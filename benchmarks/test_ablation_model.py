"""Model-consistency ablation: analytic estimates vs. the cycle simulator."""

from conftest import run_once

from repro.experiments import run_model_agreement


def test_ablation_model_agreement(benchmark, report_dir):
    result = run_once(benchmark, lambda: run_model_agreement(num_workloads=8))
    (report_dir / "ablation_model.txt").write_text(result.format_report())

    # The fast analytic model must track the cycle-level simulator within
    # a 2x factor on every random workload, and within ~1.3x on average.
    assert result.worst_ratio < 2.0, result.worst_ratio
    assert result.mean_ratio < 1.3, result.mean_ratio
