"""PrIM-style DPU microbenchmarks on the simulated machine."""

from conftest import run_once

from repro.upmem import (
    arithmetic_throughput,
    dma_cost_curve,
    format_microbench_report,
    host_transfer_curve,
    tasklet_scaling,
)


def _run_all():
    return (
        arithmetic_throughput(num_tasklets=16, ops_per_tasklet=60),
        tasklet_scaling(ops_per_tasklet=150),
        dma_cost_curve(),
        host_transfer_curve(),
    )


def test_microbench_characterization(benchmark, report_dir):
    arithmetic, scaling, dma, host = run_once(benchmark, _run_all)
    (report_dir / "microbench.txt").write_text(
        format_microbench_report(arithmetic, scaling, dma, host) + "\n"
    )

    # the four hardware behaviours every kernel cost rests on:
    # 1. arithmetic hierarchy (int add >> emulated float mul)
    assert (
        arithmetic["int32_add"].ops_per_cycle
        > 10 * arithmetic["float_mul"].ops_per_cycle
    )
    # 2. one tasklet is gap-limited to ~1/11 IPC; 11+ saturate the pipeline
    assert scaling[1] < 0.15
    assert scaling[11] > 0.9
    assert scaling[24] > 0.9
    # 3. small DMA transfers are latency-dominated
    assert dma[8] < dma[2048] / 5
    # 4. host bandwidth grows with active ranks up to the channel peak
    assert host[64] < host[2560]
    assert host[2560] <= 6.7e9 * 1.01
