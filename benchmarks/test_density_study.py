"""§3 — BFS input-vector density stays low through the first half."""

from conftest import run_once

from repro.experiments import run_density_study


def test_density_study(benchmark, config, cache, report_dir):
    result = run_once(benchmark, lambda: run_density_study(config, cache))
    (report_dir / "density_study.txt").write_text(result.format_report())

    # Paper §3: "for most cases, the input vector's density remains
    # below 50% during the first half of the iterations."
    assert result.fraction_below_half >= 0.6

    # BFS must terminate on every dataset and produce valid densities.
    for row in result.rows:
        assert row.num_iterations >= 1
        assert 0.0 <= row.peak_density <= 1.0
