"""Table 4 + §6.3.2 — CPU / GPU / UPMEM system comparison."""

from conftest import run_once

from repro.experiments import (
    PAPER_KERNEL_SPEEDUPS,
    PAPER_TOTAL_SPEEDUPS,
    run_table4,
)


def test_table4_system_comparison(benchmark, config, cache, report_dir):
    result = run_once(benchmark, lambda: run_table4(config, cache))
    (report_dir / "table4.txt").write_text(result.format_report())

    # Headline claim: ALPHA-PIM beats the CPU baseline on kernel time and
    # on total time, on average, for all three algorithms.
    for algorithm in PAPER_KERNEL_SPEEDUPS:
        kernel_x = result.average_kernel_speedup(algorithm)
        total_x = result.average_total_speedup(algorithm)
        assert kernel_x > 1.5, (algorithm, kernel_x)
        assert total_x > 1.0, (algorithm, total_x)
        # kernel speedup always exceeds total speedup (transfers eat into
        # the advantage), as in every paper row
        assert kernel_x > total_x, algorithm

    # §6.3.2 observation 3: the GPU has the lowest execution time of the
    # three systems on every (algorithm, dataset) pair.
    assert result.gpu_wins_everywhere()

    # §6.3.2 observation 2: UPMEM's compute utilization beats the
    # CPU's and GPU's fractions-of-a-percent on the large datasets.
    large = [r for r in result.rows if r.dataset == "A302"]
    for row in large:
        assert row.upmem_util_kernel_pct > row.cpu.utilization_pct
        assert row.upmem_util_kernel_pct > row.gpu.utilization_pct


def test_table4_energy_ordering(benchmark, config, cache, report_dir):
    """Energy: the GPU is the most efficient system, as in the paper."""
    result = run_once(benchmark, lambda: run_table4(config, cache))
    for row in result.rows:
        assert row.gpu.energy_j < row.cpu.energy_j
        assert row.gpu.energy_j < row.upmem_energy_j
