"""§6.4 recommendations — hardware-change ablations on the simulator."""

from conftest import run_once

from repro.experiments import run_hardware_ablations


def test_ablation_hardware(benchmark, config, cache, report_dir):
    result = run_once(benchmark, lambda: run_hardware_ablations(config, cache))
    (report_dir / "ablation_hardware.txt").write_text(result.format_report())

    # Every recommended change helps (or at worst is neutral) ...
    for row in result.rows:
        assert row.speedup_vs_baseline >= 0.999, row.name

    # ... the idealized pipeline (intra-thread forwarding) is the largest
    # single lever, as PIMulator's proposal suggests ...
    ideal = result.speedup("idealized pipeline")
    assert ideal >= result.speedup("non-blocking DMA") - 1e-9
    assert ideal >= result.speedup("no RF hazards") - 1e-9

    # ... and combining all three is at least as good as any single one.
    combined = result.speedup("all three")
    assert combined >= ideal - 1e-9
    assert combined > 1.05
