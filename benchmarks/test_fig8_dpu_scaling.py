"""Fig. 8 — phase breakdown while scaling DPUs (512 / 1024 / 2048)."""

from conftest import run_once

from repro.experiments import run_fig8


def test_fig8_dpu_scaling(benchmark, config, cache, report_dir):
    result = run_once(benchmark, lambda: run_fig8(config, cache))
    (report_dir / "fig8.txt").write_text(result.format_report())

    # Paper claim 1: BFS and SSSP spend most of their time moving vectors
    # (Load + Retrieve dominate their totals).
    for algorithm in ("bfs", "sssp"):
        assert result.transfer_fraction(algorithm) > 0.5, algorithm

    # Paper claim 2: PPR is the kernel-heaviest algorithm (software-
    # emulated floating point).
    ppr_kernel = result.kernel_fraction("ppr")
    assert ppr_kernel > result.kernel_fraction("bfs")
    assert ppr_kernel > result.kernel_fraction("sssp")

    # Paper claim 3: 2048 DPUs give limited (or negative) benefit over
    # 1024 for the transfer-bound algorithms, because input-vector load
    # cost grows with the DPU count.
    for algorithm in ("bfs", "sssp"):
        t1024 = result.normalized_total(algorithm, 1024)
        t2048 = result.normalized_total(algorithm, 2048)
        assert t2048 > t1024 * 0.8, (algorithm, t1024, t2048)
