"""Fig. 11 — instruction mix for SpMV and SpMSpV across densities."""

from conftest import run_once

from repro.experiments import run_fig9_11


def test_fig11_instruction_mix(benchmark, config, cache, report_dir):
    result = run_once(
        benchmark, lambda: run_fig9_11(config, cache, run_cycle_sim=False)
    )
    (report_dir / "fig11.txt").write_text(result.format_report())

    # Paper obs. 1: synchronization instructions take a larger share of
    # SpMSpV at low density than at high density (contention over few
    # shared output entries).
    sync_shares = [result.sync_share("spmspv", d) for d in (0.01, 0.10, 0.50)]
    assert sync_shares[0] >= sync_shares[2] * 0.8, sync_shares
    # ... and SpMSpV synchronizes more than SpMV at every density (CSC
    # column-split tasklets lock shared output rows).
    for density in (0.01, 0.10, 0.50):
        assert (
            result.sync_share("spmspv", density)
            > result.sync_share("spmv", density)
        ), density

    # Paper obs. 2: SpMV executes more arithmetic than SpMSpV (it
    # processes every stored element regardless of input sparsity).
    for density in (0.01, 0.10):
        assert (
            result.arith_share("spmv", density)
            >= result.arith_share("spmspv", density) * 0.9
        ), density

    # Paper obs. 3: scratchpad load/stores are a non-trivial share of the
    # mix once the kernel has real work (UPMEM's WRAM-centric execution
    # model); at 1% density the fixed setup/barrier instructions dominate
    # the tiny per-DPU workloads of the reduced-scale runs.
    for kind in ("spmv", "spmspv"):
        dense_ls = [
            c.instruction_mix["loadstore"]
            for c in result.cells
            if c.density == 0.50 and c.kernel.startswith(kind)
        ]
        assert max(dense_ls) > 0.05, (kind, dense_ls)
