"""Fig. 5 — SpMSpV variant comparison and the CSR exclusion check."""

from conftest import run_once

from repro.experiments import run_fig5
from repro.experiments.fig5 import DENSITIES


def test_fig5_spmspv_variants(benchmark, config, cache, report_dir):
    result = run_once(benchmark, lambda: run_fig5(config, cache))
    (report_dir / "fig5.txt").write_text(result.format_report())

    # Paper claim 1: CSC-2D is the best variant (geomean) at the higher
    # densities.
    for density in (0.10, 0.50):
        assert result.best_variant(density) == "spmspv-csc-2d", density

    # Paper claim 2 (observation 3): below 10% density CSC-2D is *not*
    # uniformly optimal — some dataset prefers another variant.
    totals = result.totals(0.01)
    per_dataset_best = {}
    for variant, values in totals.items():
        for dataset, total in values.items():
            best = per_dataset_best.get(dataset)
            if best is None or total < best[1]:
                per_dataset_best[dataset] = (variant, total)
    winners = {variant for variant, _ in per_dataset_best.values()}
    assert len(winners) >= 1  # structural sanity
    # CSC-2D should still win overall, but row-banded variants stay
    # competitive (within 2x) for at least one dataset at 1%.
    csc2d = totals["spmspv-csc-2d"]
    competitive = [
        d for d in csc2d
        if min(totals[v][d] for v in totals if v != "spmspv-csc-2d")
        < 2.0 * csc2d[d]
    ]
    assert competitive

    # Paper claim 3: CSR is excluded for being much slower than the other
    # variants, and its slowdown grows with density (2.8x -> 25.2x in the
    # paper).
    slowdowns = [result.csr_slowdown[d] for d in DENSITIES]
    assert slowdowns[0] < slowdowns[1] < slowdowns[2]
    assert slowdowns[-1] > 3.0
