"""Tests for the reference semiring matvec operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.semiring import BOOLEAN_OR_AND, MAX_TIMES, MIN_PLUS, PLUS_TIMES
from repro.sparse import (
    COOMatrix,
    SparseVector,
    random_sparse_vector,
    spmspv,
    spmv_dense,
    spmv_to_sparse,
)


def make_matrix(seed=0, n=30, density=0.15):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.uniform(0.5, 2.0, (n, n))
    return COOMatrix.from_dense(dense), dense


class TestSpMVDense:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_numpy(self, seed):
        matrix, dense = make_matrix(seed)
        x = np.random.default_rng(seed + 100).random(matrix.ncols)
        assert np.allclose(spmv_dense(matrix, x), dense @ x)

    def test_works_on_all_formats(self):
        matrix, dense = make_matrix(1)
        x = np.random.default_rng(7).random(matrix.ncols)
        expected = dense @ x
        assert np.allclose(spmv_dense(matrix.to_csr(), x), expected)
        assert np.allclose(spmv_dense(matrix.to_csc(), x), expected)

    def test_shape_mismatch(self):
        matrix, _ = make_matrix()
        with pytest.raises(ShapeError):
            spmv_dense(matrix, np.zeros(matrix.ncols + 1))

    def test_min_plus(self):
        matrix, dense = make_matrix(2)
        x = np.random.default_rng(3).random(matrix.ncols)
        got = spmv_dense(matrix, x, MIN_PLUS)
        with np.errstate(invalid="ignore"):
            candidates = np.where(dense != 0, dense + x[None, :], np.inf)
        expected = candidates.min(axis=1)
        assert np.allclose(got, expected)

    def test_boolean(self):
        matrix, dense = make_matrix(3)
        pattern = COOMatrix(
            matrix.rows, matrix.cols,
            np.ones(matrix.nnz, dtype=np.int32), matrix.shape,
        )
        x = (np.random.default_rng(4).random(matrix.ncols) < 0.3).astype(np.int32)
        got = spmv_dense(pattern, x, BOOLEAN_OR_AND)
        expected = ((dense != 0) @ x > 0).astype(np.int32)
        assert np.array_equal(got.astype(bool), expected.astype(bool))

    def test_empty_matrix(self):
        m = COOMatrix.empty(5, dtype=np.float64)
        y = spmv_dense(m, np.ones(5))
        assert np.array_equal(y, np.zeros(5))


class TestSpMSpV:
    @pytest.mark.parametrize("density", [0.0, 0.05, 0.3, 1.0])
    def test_matches_spmv(self, density):
        matrix, dense = make_matrix(5)
        x = random_sparse_vector(
            matrix.ncols, density, rng=np.random.default_rng(9)
        )
        got = spmspv(matrix, x)
        expected = dense @ x.to_dense()
        assert np.allclose(got.to_dense(), expected)

    def test_min_plus_semiring(self):
        matrix, dense = make_matrix(6)
        x = SparseVector([0, 4], [0.0, 1.0], matrix.ncols)
        got = spmspv(matrix, x, MIN_PLUS)
        xd = x.to_dense(zero=np.inf)
        with np.errstate(invalid="ignore"):
            cands = np.where(dense != 0, dense + xd[None, :], np.inf)
        expected = cands.min(axis=1)
        finite = np.isfinite(expected)
        assert np.allclose(got.to_dense(zero=np.inf)[finite], expected[finite])

    def test_max_times_semiring(self):
        matrix, dense = make_matrix(7)
        x = random_sparse_vector(
            matrix.ncols, 0.2, rng=np.random.default_rng(11)
        )
        got = spmspv(matrix, x, MAX_TIMES)
        prods = dense * x.to_dense()[None, :]
        expected = prods.max(axis=1)
        expected[expected < 0] = 0.0
        assert np.allclose(got.to_dense(), np.maximum(expected, 0.0))

    def test_empty_input(self):
        matrix, _ = make_matrix(8)
        out = spmspv(matrix, SparseVector.empty(matrix.ncols))
        assert out.nnz == 0

    def test_shape_mismatch(self):
        matrix, _ = make_matrix()
        with pytest.raises(ShapeError):
            spmspv(matrix, SparseVector.empty(matrix.ncols + 2))

    def test_output_is_compressed(self):
        matrix, _ = make_matrix(9)
        x = random_sparse_vector(matrix.ncols, 0.1, rng=np.random.default_rng(0))
        out = spmspv(matrix, x)
        # no explicit zeros stored
        assert np.all(out.values != 0)


def test_spmv_to_sparse():
    matrix, dense = make_matrix(10)
    x = np.random.default_rng(1).random(matrix.ncols)
    out = spmv_to_sparse(matrix, x)
    assert isinstance(out, SparseVector)
    assert np.allclose(out.to_dense(), dense @ x)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 10_000),
    st.floats(0.0, 1.0),
)
def test_property_spmspv_equals_spmv(seed, density):
    """SpMSpV and dense SpMV agree on every input under (+, x)."""
    rng = np.random.default_rng(seed)
    n = 25
    dense = (rng.random((n, n)) < 0.2) * rng.uniform(0.5, 2.0, (n, n))
    matrix = COOMatrix.from_dense(dense)
    x = random_sparse_vector(n, density, rng=rng)
    via_sparse = spmspv(matrix, x).to_dense()
    via_dense = spmv_dense(matrix, x.to_dense())
    assert np.allclose(via_sparse, via_dense)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_semiring_linearity(seed):
    """A (x) (x + y) == (A (x) x) + (A (x) y) under plus-times."""
    rng = np.random.default_rng(seed)
    n = 20
    dense = (rng.random((n, n)) < 0.25) * rng.uniform(0.5, 2.0, (n, n))
    matrix = COOMatrix.from_dense(dense)
    x = rng.random(n)
    y = rng.random(n)
    left = spmv_dense(matrix, x + y, PLUS_TIMES)
    right = spmv_dense(matrix, x) + spmv_dense(matrix, y)
    assert np.allclose(left, right)
