"""Chaos soak harness: crash/resume bit-identity across the algorithm zoo.

Property under test: *a run that is killed at arbitrary points — between
iterations, right after a commit, or in the middle of a checkpoint write
— and then resumed from its checkpoint store produces exactly the
numbers the uninterrupted run produces.*  "Exactly" means bit-identity:
result vectors compare equal as raw bytes, every per-iteration trace
matches field for field, the float phase sums agree to the last ulp,
and (when a :class:`~repro.faults.FaultPlan` is armed) the injected
fault schedule of the stitched-together run equals the uninterrupted
one's event for event.

The seeded soak reads ``REPRO_CHAOS_SEED`` from the environment
(default 0) so a CI matrix can sweep schedules without code changes::

    REPRO_CHAOS_SEED=2 pytest -m checkpoint tests/test_checkpoint_chaos.py
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from conftest import random_graph

from repro.algorithms import (
    bfs,
    connected_components,
    multi_source_bfs,
    pagerank,
    ppr,
    sssp,
    sssp_delta_stepping,
)
from repro.checkpoint import (
    CheckpointConfig,
    CheckpointPolicy,
    CrashSchedule,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    SimulatedCrash,
)
from repro.faults import FaultPlan
from repro.upmem.config import SystemConfig

pytestmark = pytest.mark.checkpoint

#: CI soak matrix knob: which random crash schedule this process runs.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

NUM_DPUS = 64

# Hard cap on chaos re-invocations: a schedule with K kill points needs
# at most K + 1 attempts (each kill fires single-shot).
MAX_ATTEMPTS = 16


@pytest.fixture()
def system():
    return SystemConfig(num_dpus=NUM_DPUS)


@pytest.fixture()
def graph():
    return random_graph(n=96, avg_degree=4.0, seed=11)


@pytest.fixture()
def wgraph():
    return random_graph(n=96, avg_degree=4.0, seed=11, weights="random")


# -- the algorithm zoo --------------------------------------------------------
#
# name -> callable(graph, wgraph, system, checkpoint, fault_plan) -> run

RUNNERS = {
    "bfs": lambda g, w, s, ck, fp: bfs(
        g, 0, s, NUM_DPUS, checkpoint=ck, fault_plan=fp
    ),
    "sssp": lambda g, w, s, ck, fp: sssp(
        w, 0, s, NUM_DPUS, checkpoint=ck, fault_plan=fp
    ),
    "ppr": lambda g, w, s, ck, fp: ppr(
        g, 3, s, NUM_DPUS, checkpoint=ck, fault_plan=fp
    ),
    "pagerank": lambda g, w, s, ck, fp: pagerank(
        g, s, NUM_DPUS, checkpoint=ck, fault_plan=fp
    ),
    "cc": lambda g, w, s, ck, fp: connected_components(
        g, s, NUM_DPUS, checkpoint=ck, fault_plan=fp
    ),
    "delta": lambda g, w, s, ck, fp: sssp_delta_stepping(
        w, 0, s, NUM_DPUS, checkpoint=ck, fault_plan=fp
    ),
    "msbfs": lambda g, w, s, ck, fp: multi_source_bfs(
        g, [0, 5, 17], s, NUM_DPUS, checkpoint=ck
    ),
}

#: Runners that accept a fault plan (msbfs has no fault-layer path).
FAULTABLE = ("bfs", "sssp", "ppr", "pagerank", "cc", "delta")


def run_until_done(runner, graph, wgraph, system, config):
    """Invoke the algorithm under chaos until an attempt completes.

    Each :class:`SimulatedCrash` models one machine death; re-invoking
    with the same config is the "operator restarts the job" step.
    """
    crashes = 0
    for _ in range(MAX_ATTEMPTS):
        try:
            return runner(graph, wgraph, system, config, None), crashes
        except SimulatedCrash:
            crashes += 1
    raise AssertionError(f"still crashing after {MAX_ATTEMPTS} attempts")


def assert_bit_identical(expected, actual, faults: bool = False):
    """Full observable-state equality between two AlgorithmRuns."""
    assert actual.values.dtype == expected.values.dtype
    assert actual.values.shape == expected.values.shape
    assert actual.values.tobytes() == expected.values.tobytes()
    assert actual.converged == expected.converged
    assert actual.num_iterations == expected.num_iterations
    assert actual.breakdown.as_dict() == expected.breakdown.as_dict()
    assert actual.achieved_ops == expected.achieved_ops
    assert actual.energy.total_j == expected.energy.total_j
    for t_exp, t_act in zip(expected.iterations, actual.iterations):
        assert t_act.iteration == t_exp.iteration
        assert t_act.kernel_name == t_exp.kernel_name
        assert t_act.input_density == t_exp.input_density
        assert t_act.breakdown.as_dict() == t_exp.breakdown.as_dict()
        assert t_act.frontier_size == t_exp.frontier_size
        assert t_act.bytes_loaded == t_exp.bytes_loaded
        assert t_act.bytes_retrieved == t_exp.bytes_retrieved
    if faults:
        assert expected.fault_log is not None
        assert actual.fault_log is not None
        assert actual.fault_log.schedule() == expected.fault_log.schedule()
        assert actual.fault_log.summary() == expected.fault_log.summary()


# -- crash/resume bit-identity grid -------------------------------------------

class TestCrashResumeGrid:
    @pytest.mark.parametrize("name", sorted(RUNNERS))
    @pytest.mark.parametrize("kill", [0, 1, 2])
    def test_single_crash_resume(self, name, kill, graph, wgraph, system):
        runner = RUNNERS[name]
        baseline = runner(graph, wgraph, system, None, None)
        if kill >= baseline.num_iterations:
            pytest.skip("schedule kills after convergence")
        config = CheckpointConfig(
            store=MemoryCheckpointStore(),
            crash_schedule=CrashSchedule(crash_iterations=[kill]),
        )
        resumed, crashes = run_until_done(
            runner, graph, wgraph, system, config
        )
        assert crashes == 1
        assert_bit_identical(baseline, resumed)
        assert resumed.checkpoint["enabled"]
        if kill > 0:
            assert resumed.checkpoint["resumed_from_iteration"] == kill - 1

    @pytest.mark.parametrize("name", sorted(RUNNERS))
    def test_multi_crash_resume(self, name, graph, wgraph, system):
        """Two machine deaths (one pre-step, one post-commit) in one run."""
        runner = RUNNERS[name]
        baseline = runner(graph, wgraph, system, None, None)
        if baseline.num_iterations < 4:
            pytest.skip("run too short for a two-kill schedule")
        config = CheckpointConfig(
            store=MemoryCheckpointStore(),
            crash_schedule=CrashSchedule(
                crash_iterations=[1],
                post_commit_iterations=[2],
            ),
        )
        resumed, crashes = run_until_done(
            runner, graph, wgraph, system, config
        )
        assert crashes == 2
        assert_bit_identical(baseline, resumed)


# -- chaos layered over fault injection ---------------------------------------

class TestCrashResumeUnderFaults:
    @pytest.mark.parametrize("name", FAULTABLE)
    def test_fault_schedule_survives_resume(
        self, name, graph, wgraph, system
    ):
        """Crash + resume with an armed FaultPlan: the stitched run's
        injected faults (and their recovery costs) equal the
        uninterrupted run's, because the checkpoint carries the
        injector's RNG position and the DPU health table."""
        runner = RUNNERS[name]
        plan = FaultPlan.uniform(0.02, seed=CHAOS_SEED + 40)

        def with_faults(g, w, s, ck, _fp):
            return runner(g, w, s, ck, plan)

        baseline = with_faults(graph, wgraph, system, None, None)
        if baseline.num_iterations < 3:
            pytest.skip("run converges before the kill point")
        config = CheckpointConfig(
            store=MemoryCheckpointStore(),
            crash_schedule=CrashSchedule(crash_iterations=[2]),
        )
        resumed, crashes = run_until_done(
            with_faults, graph, wgraph, system, config
        )
        assert crashes == 1
        assert_bit_identical(baseline, resumed, faults=True)


# -- torn checkpoint writes ---------------------------------------------------

class TestTornWrites:
    def test_torn_record_falls_back_to_previous(
        self, graph, system, tmp_path
    ):
        """The machine dies mid-checkpoint-write at record 2; resume
        skips the truncated file and restores record 1 — still
        bit-identical, just re-executing one extra iteration."""
        baseline = bfs(graph, 0, system, NUM_DPUS)
        assert baseline.num_iterations >= 4
        store = DirectoryCheckpointStore(tmp_path)
        config = CheckpointConfig(
            store=store,
            crash_schedule=CrashSchedule(
                torn_write_records=[2], torn_fraction=0.4
            ),
        )
        resumed, crashes = run_until_done(
            RUNNERS["bfs"], graph, None, system, config
        )
        assert crashes == 1
        assert_bit_identical(baseline, resumed)
        # torn file exists on disk but was never served
        latest = store.latest_valid()
        assert latest is not None
        assert resumed.checkpoint["resumed_from_iteration"] == 1

    def test_first_record_torn_resumes_from_scratch(
        self, graph, system, tmp_path
    ):
        """When the very first checkpoint write is the torn one there is
        no valid record at restart: the run starts over from iteration 0
        and still matches the baseline."""
        baseline = bfs(graph, 0, system, NUM_DPUS)
        store = DirectoryCheckpointStore(tmp_path)
        config = CheckpointConfig(
            store=store,
            crash_schedule=CrashSchedule(
                torn_write_records=[0], torn_fraction=0.6
            ),
        )
        resumed, crashes = run_until_done(
            RUNNERS["bfs"], graph, None, system, config
        )
        assert crashes == 1
        assert_bit_identical(baseline, resumed)
        assert resumed.checkpoint["resumed_from_iteration"] is None

    def test_bit_rot_record_is_skipped(self, graph, system):
        """A record corrupted at rest (CRC mismatch) is skipped by
        latest_valid() during resume."""
        baseline = bfs(graph, 0, system, NUM_DPUS)
        store = MemoryCheckpointStore()
        config = CheckpointConfig(
            store=store,
            crash_schedule=CrashSchedule(crash_iterations=[3]),
        )
        with pytest.raises(SimulatedCrash):
            RUNNERS["bfs"](graph, None, system, config, None)
        # flip a byte in the newest record's payload
        newest = max(store.sequence_numbers())
        store.corrupt(newest, offset=40)
        resumed = RUNNERS["bfs"](graph, None, system, config, None)
        assert_bit_identical(baseline, resumed)
        assert resumed.checkpoint["resumed_from_iteration"] < 3


# -- seeded soak (the CI chaos matrix entry point) ----------------------------

class TestSeededSoak:
    @pytest.mark.parametrize("case", range(4))
    def test_random_schedule_soak(self, case, graph, wgraph, system):
        """Random kill points + torn writes from the matrix seed, over a
        rotating algorithm: whatever the schedule does, the stitched run
        must equal the uninterrupted run bit for bit."""
        name = sorted(RUNNERS)[(CHAOS_SEED + case) % len(RUNNERS)]
        runner = RUNNERS[name]
        baseline = runner(graph, wgraph, system, None, None)
        horizon = max(baseline.num_iterations - 1, 1)
        schedule = CrashSchedule.seeded(
            seed=CHAOS_SEED * 101 + case,
            max_iteration=horizon,
            num_crashes=min(2, horizon + 1),
            torn_writes=1 if horizon > 2 else 0,
        )
        config = CheckpointConfig(
            store=MemoryCheckpointStore(), crash_schedule=schedule
        )
        resumed, crashes = run_until_done(
            runner, graph, wgraph, system, config
        )
        assert crashes == schedule.crashes
        assert_bit_identical(baseline, resumed)

    def test_soak_with_faults_and_directory_store(
        self, graph, system, tmp_path
    ):
        """End-to-end worst case: fault injection armed, records on
        disk, a seeded schedule with two kills and a torn write."""
        plan = FaultPlan.uniform(0.015, seed=CHAOS_SEED + 7)
        baseline = bfs(graph, 0, system, NUM_DPUS, fault_plan=plan)
        horizon = max(baseline.num_iterations - 1, 1)
        schedule = CrashSchedule.seeded(
            seed=CHAOS_SEED * 31 + 5,
            max_iteration=horizon,
            num_crashes=min(2, horizon + 1),
            torn_writes=1 if horizon > 2 else 0,
        )
        config = CheckpointConfig(
            store=DirectoryCheckpointStore(tmp_path),
            crash_schedule=schedule,
        )

        def with_faults(g, w, s, ck, _fp):
            return bfs(g, 0, s, NUM_DPUS, checkpoint=ck, fault_plan=plan)

        resumed, crashes = run_until_done(
            with_faults, graph, None, system, config
        )
        assert crashes == schedule.crashes
        assert_bit_identical(baseline, resumed, faults=True)
