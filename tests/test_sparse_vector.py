"""Tests for compressed sparse vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import SparseVector, dense_nbytes, random_sparse_vector


class TestConstruction:
    def test_basic(self):
        v = SparseVector([3, 1], [30.0, 10.0], 5)
        # sorted by index on construction
        assert list(v.indices) == [1, 3]
        assert list(v.values) == [10.0, 30.0]
        assert v.size == 5
        assert v.nnz == 2

    def test_empty(self):
        v = SparseVector.empty(10)
        assert v.nnz == 0
        assert v.density == 0.0
        assert np.array_equal(v.to_dense(), np.zeros(10))

    def test_basis(self):
        v = SparseVector.basis(2, 6, value=7)
        assert v.nnz == 1
        assert v.to_dense()[2] == 7

    def test_basis_out_of_range(self):
        with pytest.raises(ShapeError):
            SparseVector.basis(6, 6)

    def test_rejects_duplicates(self):
        with pytest.raises(SparseFormatError):
            SparseVector([1, 1], [1.0, 2.0], 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(SparseFormatError):
            SparseVector([4], [1.0], 4)
        with pytest.raises(SparseFormatError):
            SparseVector([-1], [1.0], 4)

    def test_rejects_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            SparseVector([1, 2], [1.0], 4)

    def test_rejects_negative_size(self):
        with pytest.raises(SparseFormatError):
            SparseVector([], [], -1)

    def test_rejects_2d(self):
        with pytest.raises(SparseFormatError):
            SparseVector(np.zeros((2, 2)), np.zeros((2, 2)), 4)


class TestFromDense:
    def test_roundtrip(self):
        dense = np.array([0.0, 1.5, 0.0, 2.5])
        v = SparseVector.from_dense(dense)
        assert v.nnz == 2
        assert np.array_equal(v.to_dense(), dense)

    def test_custom_zero_inf(self):
        # min-plus semiring: inf is the absent value
        dense = np.array([np.inf, 3.0, np.inf, 0.0])
        v = SparseVector.from_dense(dense, zero=np.inf)
        assert v.nnz == 2
        assert list(v.indices) == [1, 3]
        back = v.to_dense(zero=np.inf)
        assert np.array_equal(back, dense)

    def test_zero_value_kept_under_inf_zero(self):
        # 0.0 is a real distance under min-plus, must not be dropped
        v = SparseVector.from_dense(np.array([0.0, np.inf]), zero=np.inf)
        assert v.nnz == 1

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            SparseVector.from_dense(np.zeros((2, 2)))


class TestSlice:
    def test_basic(self):
        v = SparseVector([1, 3, 7], [1.0, 3.0, 7.0], 10)
        s = v.slice(2, 8)
        assert s.size == 6
        assert list(s.indices) == [1, 5]  # re-based
        assert list(s.values) == [3.0, 7.0]

    def test_empty_slice(self):
        v = SparseVector([1], [1.0], 10)
        s = v.slice(5, 5)
        assert s.size == 0 and s.nnz == 0

    def test_whole(self):
        v = SparseVector([2], [2.0], 4)
        assert v.slice(0, 4) == v

    def test_bad_bounds(self):
        v = SparseVector([1], [1.0], 4)
        with pytest.raises(ShapeError):
            v.slice(3, 2)
        with pytest.raises(ShapeError):
            v.slice(0, 5)


class TestProperties:
    def test_density(self):
        v = SparseVector([0, 1], [1, 1], 10)
        assert v.density == pytest.approx(0.2)

    def test_density_empty_size(self):
        assert SparseVector([], [], 0).density == 0.0

    def test_nbytes_compressed(self):
        v = SparseVector([0, 1], np.array([1, 1], dtype=np.int32), 10)
        assert v.nbytes_compressed == 2 * 8 + 2 * 4

    def test_len(self):
        assert len(SparseVector([], [], 7)) == 7

    def test_copy_independent(self):
        v = SparseVector([1], [1.0], 4)
        c = v.copy()
        c.values[0] = 99.0
        assert v.values[0] == 1.0

    def test_eq(self):
        a = SparseVector([1], [1.0], 4)
        assert a == SparseVector([1], [1.0], 4)
        assert a != SparseVector([1], [2.0], 4)
        assert a != SparseVector([1], [1.0], 5)

    def test_repr(self):
        assert "nnz=1" in repr(SparseVector([1], [1.0], 4))


class TestRandom:
    def test_density_hits_target(self):
        v = random_sparse_vector(1000, 0.25, rng=np.random.default_rng(0))
        assert v.nnz == 250

    def test_extremes(self):
        assert random_sparse_vector(100, 0.0).nnz == 0
        assert random_sparse_vector(100, 1.0).nnz == 100

    def test_integer_dtype_has_no_zeros(self):
        v = random_sparse_vector(
            500, 0.5, rng=np.random.default_rng(1), dtype=np.int32
        )
        assert np.all(v.values >= 1)

    def test_rejects_bad_density(self):
        with pytest.raises(SparseFormatError):
            random_sparse_vector(10, 1.5)


def test_dense_nbytes():
    assert dense_nbytes(100, np.int32) == 400
    assert dense_nbytes(100, np.float64) == 800


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 99), st.floats(0.5, 10.0)),
        max_size=50,
        unique_by=lambda t: t[0],
    )
)
def test_property_dense_roundtrip(data):
    """from_dense(to_dense(v)) == v for any valid sparse vector."""
    indices = [i for i, _ in data]
    values = [x for _, x in data]
    v = SparseVector(indices, values, 100)
    assert SparseVector.from_dense(v.to_dense()) == v


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 200),
    st.floats(0.0, 1.0),
    st.integers(0, 2**31 - 1),
)
def test_property_random_vector_valid(size, density, seed):
    """random vectors are always well-formed and in range."""
    v = random_sparse_vector(size, density, rng=np.random.default_rng(seed))
    assert 0 <= v.nnz <= size
    if v.nnz:
        assert v.indices.min() >= 0 and v.indices.max() < size
        assert np.all(np.diff(v.indices) > 0)
