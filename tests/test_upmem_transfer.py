"""Tests for the host<->DPU transfer and merge cost models."""

import pytest

from repro.errors import TransferError
from repro.upmem import (
    SystemConfig,
    TransferModel,
    convergence_check_time,
    merge_time_host,
)


@pytest.fixture
def model():
    return TransferModel(SystemConfig(num_dpus=256))


class TestScatterGather:
    def test_scatter_positive(self, model):
        cost = model.scatter([1024] * 64)
        assert cost.seconds > 0
        assert cost.bytes_moved == 64 * 1024
        assert cost.kind == "scatter"

    def test_scatter_pads_to_max(self, model):
        uneven = model.scatter([1] * 63 + [1 << 20])
        even = model.scatter([1 << 20] * 64)
        assert uneven.seconds == pytest.approx(even.seconds)

    def test_scatter_floor_granule(self, model):
        tiny = model.scatter([8] * 64)
        floored = model.scatter([4096] * 64)
        assert tiny.seconds == pytest.approx(floored.seconds)

    def test_gather_slower_than_scatter_at_scale(self):
        # the h2d/d2h bandwidth asymmetry only shows once enough ranks
        # are active to saturate the aggregate peaks
        full = TransferModel(SystemConfig(num_dpus=2560))
        size = [1 << 20] * 2560
        assert full.gather(size).seconds > full.scatter(size).seconds

    def test_gather_monotone_in_size(self, model):
        small = model.gather([1 << 14] * 64)
        large = model.gather([1 << 20] * 64)
        assert large.seconds > small.seconds

    def test_scatter_rejects_empty(self, model):
        with pytest.raises(TransferError):
            model.scatter([])

    def test_scatter_rejects_negative(self, model):
        with pytest.raises(TransferError):
            model.scatter([-1])

    def test_rejects_too_many_dpus(self, model):
        with pytest.raises(TransferError):
            model.scatter([8] * 1000)


class TestBroadcast:
    def test_broadcast_volume_scales_with_dpus(self, model):
        few = model.broadcast(1 << 20, 64)
        many = model.broadcast(1 << 20, 256)
        # logical volume scales linearly; time stays ~flat while extra
        # ranks add bandwidth, and grows once the channels saturate
        assert many.bytes_moved == 256 << 20
        assert many.seconds >= few.seconds * 0.9
        full = TransferModel(SystemConfig(num_dpus=2560))
        saturated = full.broadcast(1 << 20, 2560)
        half = full.broadcast(1 << 20, 1280)
        assert saturated.seconds > half.seconds

    def test_broadcast_chip_discount(self, model):
        """Broadcasting costs ~1/chip_factor of naive per-DPU copies."""
        bcast = model.broadcast(1 << 20, 256)
        scatter = model.scatter([1 << 20] * 256)
        factor = model.cfg.chip_replication_factor
        assert bcast.seconds < scatter.seconds
        assert bcast.seconds > scatter.seconds / (factor * 1.5)

    def test_broadcast_rejects_negative(self, model):
        with pytest.raises(TransferError):
            model.broadcast(-5, 8)


class TestGridScatter:
    def test_cheaper_than_full_scatter(self, model):
        segments = [1 << 16] * 16
        grid = model.grid_scatter(segments, grid_rows=16)
        naive = model.scatter([1 << 16] * 256)
        assert grid.num_dpus == 256
        assert grid.seconds < naive.seconds

    def test_rejects_bad_args(self, model):
        with pytest.raises(TransferError):
            model.grid_scatter([], 4)
        with pytest.raises(TransferError):
            model.grid_scatter([8], 0)
        with pytest.raises(TransferError):
            model.grid_scatter([-1], 2)


class TestSerial:
    def test_serial_single_dpu(self, model):
        cost = model.serial(1 << 20, to_device=True)
        assert cost.num_dpus == 1
        assert cost.seconds > 0

    def test_serial_direction(self, model):
        to_dev = model.serial(1 << 24, True)
        from_dev = model.serial(1 << 24, False)
        # both capped at the single-rank bandwidth
        assert to_dev.seconds == pytest.approx(from_dev.seconds)


class TestCostAlgebra:
    def test_add(self, model):
        a = model.scatter([1024] * 8)
        b = model.gather([1024] * 8)
        c = a + b
        assert c.seconds == pytest.approx(a.seconds + b.seconds)
        assert c.bytes_moved == a.bytes_moved + b.bytes_moved


class TestMerge:
    def test_merge_zero_for_single_partial(self):
        assert merge_time_host(1, 1000) == 0.0
        assert merge_time_host(5, 0) == 0.0

    def test_merge_scales(self):
        assert merge_time_host(4, 1000) == pytest.approx(
            3 * merge_time_host(2, 1000)
        )

    def test_convergence_check(self):
        assert convergence_check_time(0) == 0.0
        assert convergence_check_time(10**9) == pytest.approx(1.0)
