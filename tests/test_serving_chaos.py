"""Chaos-serving soak: rank kills, torn checkpoints, deadline storms.

The degraded-mode SLO contract under test: when a rank dies mid-burst
the service keeps answering, every completed answer is **bit-identical**
to a fault-free run of the same seeded workload, and every query that
did *not* complete is accounted for as shed / deadline / failed —
nothing disappears and nothing is silently wrong.

The fault seeds are pinned empirically against the 2-rank (128-DPU)
layout: plan seed 0 kills rank 1 mid-burst (everything still completes,
degraded); plan seed 10 kills both ranks (retries exhaust, a tail of
queries fails).  ``num_dpus`` must stay >= 128 here — with a single
rank, a rank failure is whole-machine loss and nothing can degrade
gracefully.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from conftest import random_graph

from repro.checkpoint import (
    CheckpointConfig,
    CrashSchedule,
    MemoryCheckpointStore,
    SimulatedCrash,
)
from repro.faults import FaultPlan
from repro.serving import (
    GraphService,
    LoadgenConfig,
    QueryStatus,
    TenantConfig,
    batched_bfs,
    run_load,
)
from repro.serving.batched import BatchedSpmmDriver
from repro.serving.service import RetryPolicy
from repro.upmem.config import SystemConfig

pytestmark = pytest.mark.serving

NUM_DPUS = 128  # two ranks: rank loss must be survivable, not fatal

#: Empirically pinned chaos plans (see module docstring).
RANK_KILL_PLAN = FaultPlan(
    seed=0,
    rank_failure_rate=0.02,
    dpu_crash_rate=0.01,
    transfer_corruption_rate=0.01,
)
MACHINE_LOSS_PLAN = RANK_KILL_PLAN.with_seed(10)

BURST = LoadgenConfig(graph="g", tenants=3, queries_per_tenant=4, seed=42)


@pytest.fixture()
def system():
    return SystemConfig(num_dpus=NUM_DPUS)


@pytest.fixture()
def wgraph():
    return random_graph(n=120, avg_degree=5.0, seed=3, weights="random")


def serve_burst(system, wgraph, *, fault_plan=None, config=BURST,
                **service_kwargs):
    service = GraphService(system, NUM_DPUS, **service_kwargs)
    service.add_graph("g", wgraph, fault_plan=fault_plan)

    async def scenario():
        async with service:
            return await run_load(service, config)

    report, results = asyncio.run(scenario())
    return service, report, results


def assert_completed_bit_identical(results, reference_results):
    """Every completed answer equals the fault-free run's, byte-for-byte."""
    compared = 0
    for got, want in zip(results, reference_results):
        # same seeded workload => same request stream, position by position
        assert (got.tenant, got.algorithm) == (want.tenant, want.algorithm)
        if got.status is not QueryStatus.COMPLETED:
            continue
        assert want.status is QueryStatus.COMPLETED
        assert got.values.tobytes() == want.values.tobytes(), (
            f"wrong answer under faults: request #{got.request_id} "
            f"({got.algorithm})"
        )
        compared += 1
    return compared


class TestRankKillMidBurst:
    def test_degraded_mode_slo(self, system, wgraph):
        _, reference_report, reference = serve_burst(system, wgraph)
        assert reference_report.completed == reference_report.submitted
        assert reference_report.degraded_completions == 0

        service, report, results = serve_burst(
            system, wgraph, fault_plan=RANK_KILL_PLAN
        )

        # the rank actually died...
        fault_log = service.graph("g").driver_for("bfs").fault_log
        assert fault_log is not None and fault_log.failed_ranks
        assert service.graph("g").degraded

        # ...and the service absorbed it: everything still answered,
        # flagged degraded, and bit-identical to the fault-free run
        assert report.accounted
        assert report.completed == report.submitted
        assert report.degraded_completions > 0
        compared = assert_completed_bit_identical(results, reference)
        assert compared == report.completed
        assert service.slo_accounting_closes()

    def test_machine_loss_fails_loudly_never_wrongly(self, system, wgraph):
        _, _, reference = serve_burst(system, wgraph)
        service, report, results = serve_burst(
            system, wgraph,
            fault_plan=MACHINE_LOSS_PLAN,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=1e-5),
        )

        # both ranks die: a tail of queries must FAIL (or shed on the
        # tripped breaker) -- but no completed answer may be wrong
        assert report.accounted
        assert report.failed + report.shed > 0
        assert report.completed < report.submitted
        assert_completed_bit_identical(results, reference)
        failures = [r for r in results if r.status is QueryStatus.FAILED]
        assert all(r.reason == "retries-exhausted" for r in failures)
        breaker = service.graph("g").breaker
        assert breaker.trips >= 1
        assert service.slo_accounting_closes()


class TestTornCheckpointOnResume:
    def test_corrupt_newest_record_resume_bit_identical(
        self, system, wgraph
    ):
        sources = [0, 7, 23, 64]
        clean = batched_bfs(
            BatchedSpmmDriver(wgraph, system, NUM_DPUS), sources
        )

        store = MemoryCheckpointStore()
        schedule = CrashSchedule(crash_iterations=[2])
        config = CheckpointConfig(
            store=store, resume=True, crash_schedule=schedule
        )
        with pytest.raises(SimulatedCrash):
            batched_bfs(
                BatchedSpmmDriver(wgraph, system, NUM_DPUS),
                sources, checkpoint=config,
            )
        assert len(store) >= 2  # levels 0 and 1 committed before death

        # storage lost the newest record's integrity across the "reboot"
        store.corrupt(store.sequence_numbers()[-1])

        resumed = batched_bfs(
            BatchedSpmmDriver(wgraph, system, NUM_DPUS),
            sources, checkpoint=config,
        )
        assert resumed.values.tobytes() == clean.values.tobytes()
        assert resumed.checkpoint["resumed_from_iteration"] is not None
        # the corrupt record was skipped: resume point predates the crash
        assert resumed.checkpoint["resumed_from_iteration"] < 2

    def test_torn_write_skipped_on_resume(self, system, wgraph):
        sources = [0, 7, 23]
        clean = batched_bfs(
            BatchedSpmmDriver(wgraph, system, NUM_DPUS), sources
        )

        store = MemoryCheckpointStore()
        schedule = CrashSchedule(torn_write_records=[1])
        config = CheckpointConfig(
            store=store, resume=True, crash_schedule=schedule
        )
        with pytest.raises(SimulatedCrash):
            batched_bfs(
                BatchedSpmmDriver(wgraph, system, NUM_DPUS),
                sources, checkpoint=config,
            )

        resumed = batched_bfs(
            BatchedSpmmDriver(wgraph, system, NUM_DPUS),
            sources, checkpoint=config,
        )
        assert resumed.values.tobytes() == clean.values.tobytes()
        assert resumed.checkpoint["resumed_from_iteration"] is not None


class TestDeadlineStorm:
    def test_storm_sheds_on_time_never_wrongly(self, system, wgraph):
        _, _, reference = serve_burst(system, wgraph)
        service, report, results = serve_burst(
            system, wgraph,
            config=LoadgenConfig(
                graph="g", tenants=3, queries_per_tenant=4, seed=42,
                deadline_s=1e-5,
            ),
        )
        assert report.accounted
        assert report.deadline > 0
        for result in results:
            if result.status is QueryStatus.DEADLINE:
                assert result.reason in (
                    "admission", "dequeue", "iteration"
                )
                assert result.values is None
        assert_completed_bit_identical(results, reference)
        assert service.slo_accounting_closes()


class TestSeededSoak:
    """CI seed sweep: any fault seed, the invariants must hold.

    Unlike the pinned-seed tests above, this one makes no claim about
    *which* queries survive — only the universal SLO contract: every
    query accounted, every completed answer bit-identical to fault-free.
    ``REPRO_SERVING_CHAOS_SEED`` selects the fault schedule.
    """

    def test_env_seeded_fault_soak(self, system, wgraph):
        seed = int(os.environ.get("REPRO_SERVING_CHAOS_SEED", "0"))
        _, _, reference = serve_burst(system, wgraph)
        service, report, results = serve_burst(
            system, wgraph,
            fault_plan=RANK_KILL_PLAN.with_seed(seed),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=1e-5),
        )
        assert report.accounted
        assert_completed_bit_identical(results, reference)
        assert service.slo_accounting_closes()


class TestQuotaStorm:
    def test_exhausted_tenants_shed_cleanly(self, system, wgraph):
        service, report, results = serve_burst(
            system, wgraph,
            default_tenant=TenantConfig(rate=0.0, burst=1.0),
        )
        assert report.accounted
        # each of the 3 tenants gets exactly its burst allowance
        assert report.completed == BURST.tenants
        assert report.shed == report.submitted - BURST.tenants
        assert all(
            r.reason == "quota"
            for r in results if r.status is QueryStatus.SHED
        )
        assert service.counters["shed_quota"] == report.shed
        assert service.slo_accounting_closes()
