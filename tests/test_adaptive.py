"""Tests for the adaptive switching subsystem (§4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    TRAINING_SET,
    AdaptiveSwitchPolicy,
    CrossoverProbe,
    DecisionTree,
    default_tree,
    probe_crossover,
)
from repro.datasets import degree_targeted, road_network
from repro.errors import ReproError
from repro.sparse import compute_stats
from repro.types import GraphClass, GraphFeatures
from repro.upmem import SystemConfig
from conftest import random_graph


class TestDecisionTree:
    def test_fits_separable_data(self):
        features = [GraphFeatures(3, 1), GraphFeatures(4, 2),
                    GraphFeatures(10, 50), GraphFeatures(20, 80)]
        labels = [GraphClass.REGULAR, GraphClass.REGULAR,
                  GraphClass.SCALE_FREE, GraphClass.SCALE_FREE]
        tree = DecisionTree().fit(features, labels)
        assert tree.classify(GraphFeatures(3.5, 1.5)) is GraphClass.REGULAR
        assert tree.classify(GraphFeatures(15, 60)) is GraphClass.SCALE_FREE

    def test_depth_limited(self):
        rng = np.random.default_rng(0)
        features = [
            GraphFeatures(float(a), float(s))
            for a, s in rng.uniform(1, 100, (64, 2))
        ]
        labels = [
            GraphClass.SCALE_FREE if rng.random() < 0.5 else GraphClass.REGULAR
            for _ in features
        ]
        tree = DecisionTree(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2

    def test_pure_leaf_short_circuit(self):
        features = [GraphFeatures(1, 1), GraphFeatures(2, 2)]
        labels = [GraphClass.REGULAR, GraphClass.REGULAR]
        tree = DecisionTree().fit(features, labels)
        assert tree.depth() == 0

    def test_unfitted_raises(self):
        with pytest.raises(ReproError):
            DecisionTree().classify(GraphFeatures(1, 1))
        with pytest.raises(ReproError):
            DecisionTree().depth()

    def test_rejects_empty_training(self):
        with pytest.raises(ReproError):
            DecisionTree().fit([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ReproError):
            DecisionTree().fit([GraphFeatures(1, 1)], [])

    def test_rejects_bad_depth(self):
        with pytest.raises(ReproError):
            DecisionTree(max_depth=0)

    def test_default_tree_fits_training_set(self):
        tree = default_tree()
        hits = sum(
            1 for f, label in TRAINING_SET if tree.classify(f) is label
        )
        assert hits / len(TRAINING_SET) >= 0.9

    def test_switch_density(self):
        tree = default_tree()
        road = GraphFeatures(2.78, 1.0)
        social = GraphFeatures(12.27, 41.07)
        assert tree.switch_density(road) == pytest.approx(0.20)
        assert tree.switch_density(social) == pytest.approx(0.50)


class TestSwitchPolicy:
    def test_below_threshold_spmspv(self):
        policy = AdaptiveSwitchPolicy(0.5)
        assert policy.choose(0, 0.1) == "spmspv"

    def test_above_threshold_switches(self):
        policy = AdaptiveSwitchPolicy(0.5)
        assert policy.choose(0, 0.6) == "spmv"

    def test_sticky(self):
        policy = AdaptiveSwitchPolicy(0.5, sticky=True)
        policy.choose(0, 0.6)
        # density dropped below the threshold, but the switch is one-way
        assert policy.choose(1, 0.1) == "spmv"

    def test_non_sticky(self):
        policy = AdaptiveSwitchPolicy(0.5, sticky=False)
        policy.choose(0, 0.6)
        assert policy.choose(1, 0.1) == "spmspv"

    def test_reset(self):
        policy = AdaptiveSwitchPolicy(0.5)
        policy.choose(0, 0.9)
        policy.reset()
        assert policy.choose(0, 0.1) == "spmspv"

    def test_for_matrix_road_network(self):
        graph = road_network(5000, rng=np.random.default_rng(1))
        policy = AdaptiveSwitchPolicy.for_matrix(graph)
        assert policy.graph_class is GraphClass.REGULAR
        assert policy.threshold == pytest.approx(0.20)

    def test_for_matrix_scale_free(self):
        graph = degree_targeted(3000, 12.0, 41.0,
                                rng=np.random.default_rng(2))
        policy = AdaptiveSwitchPolicy.for_matrix(graph)
        assert policy.graph_class is GraphClass.SCALE_FREE
        assert policy.threshold == pytest.approx(0.50)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            AdaptiveSwitchPolicy(1.5)

    def test_describe(self):
        assert "adaptive" in AdaptiveSwitchPolicy(0.2).describe()


class TestCrossoverProbe:
    def test_crossover_interpolation(self):
        probe = CrossoverProbe(
            densities=np.array([0.1, 0.3, 0.5]),
            spmv_seconds=np.array([1.0, 1.0, 1.0]),
            spmspv_seconds=np.array([0.5, 0.9, 1.3]),
        )
        # diff crosses zero between 0.3 and 0.5: at 0.35
        assert probe.crossover_density == pytest.approx(0.35)

    def test_no_crossover(self):
        probe = CrossoverProbe(
            densities=np.array([0.1, 0.5]),
            spmv_seconds=np.array([1.0, 1.0]),
            spmspv_seconds=np.array([0.2, 0.4]),
        )
        assert probe.crossover_density is None

    def test_crossover_at_first_point(self):
        probe = CrossoverProbe(
            densities=np.array([0.1, 0.5]),
            spmv_seconds=np.array([1.0, 1.0]),
            spmspv_seconds=np.array([2.0, 3.0]),
        )
        assert probe.crossover_density == pytest.approx(0.1)

    def test_probe_on_real_kernels(self):
        matrix = random_graph(n=500, avg_degree=8, seed=31)
        probe = probe_crossover(
            matrix, SystemConfig(num_dpus=64), 64,
            densities=(0.01, 0.2, 0.8), seed=1,
        )
        assert probe.spmv_seconds.shape == (3,)
        assert np.all(probe.spmv_seconds > 0)
        assert np.all(probe.spmspv_seconds > 0)
        # SpMSpV wins at the sparse end
        assert probe.spmspv_seconds[0] < probe.spmv_seconds[0]


@settings(max_examples=25, deadline=None)
@given(
    st.floats(0.0, 1.0),
    st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20),
)
def test_property_policy_consistency(threshold, densities):
    """Non-sticky policy choice depends only on the current density."""
    policy = AdaptiveSwitchPolicy(threshold, sticky=False)
    for i, density in enumerate(densities):
        kind = policy.choose(i, density)
        assert kind == ("spmv" if density > threshold else "spmspv")
