"""End-to-end integration tests across the whole stack.

These exercise the full pipeline the way the paper's evaluation does —
dataset generation -> partitioning -> kernels -> algorithms -> baselines
-> accounting — and assert the cross-subsystem invariants the unit tests
cannot see.
"""

import numpy as np
import pytest

from repro.adaptive import AdaptiveSwitchPolicy
from repro.algorithms import (
    MatvecDriver,
    bfs,
    bfs_reference,
    ppr,
    ppr_reference,
    sssp,
    sssp_reference,
)
from repro.algorithms.ppr import normalize_columns
from repro.baselines import CpuGraphEngine, GpuGraphEngine
from repro.datasets import TABLE2, add_weights
from repro.types import PhaseBreakdown
from repro.upmem import SystemConfig

SCALE = 0.015
DPUS = 128


@pytest.fixture(scope="module")
def system():
    return SystemConfig(num_dpus=DPUS)


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(3)
    return {
        abbrev: TABLE2[abbrev].generate(scale=SCALE, rng=rng)
        for abbrev in ("A302", "face", "p2p-24")
    }


class TestFullPipeline:
    @pytest.mark.parametrize("abbrev", ("A302", "face", "p2p-24"))
    def test_bfs_three_ways(self, abbrev, graphs, system):
        """PIM, CPU and GPU engines all agree with the reference."""
        graph = graphs[abbrev]
        reference = bfs_reference(graph, 0)
        pim = bfs(graph, 0, system, DPUS,
                  policy=AdaptiveSwitchPolicy.for_matrix(graph))
        cpu = CpuGraphEngine().bfs(graph, 0)
        gpu = GpuGraphEngine().bfs(graph, 0)
        assert np.array_equal(pim.values, reference)
        assert np.array_equal(cpu.values, reference)
        assert np.array_equal(gpu.values, reference)

    def test_sssp_full_stack(self, graphs, system):
        graph = add_weights(graphs["A302"], rng=np.random.default_rng(5))
        reference = sssp_reference(graph, 0)
        pim = sssp(graph, 0, system, DPUS,
                   policy=AdaptiveSwitchPolicy.for_matrix(graph))
        assert np.allclose(pim.values, reference)
        cpu = CpuGraphEngine().sssp(graph, 0)
        assert np.allclose(cpu.values, reference)

    def test_ppr_full_stack(self, graphs, system):
        graph = graphs["face"]
        pim = ppr(graph, 0, system, DPUS,
                  policy=AdaptiveSwitchPolicy.for_matrix(graph))
        reference = ppr_reference(graph, 0)
        assert np.abs(pim.values - reference).sum() < 1e-4


class TestAccountingInvariants:
    def test_run_breakdown_is_sum_of_iterations(self, graphs, system):
        graph = graphs["A302"]
        run = bfs(graph, 0, system, DPUS)
        summed = PhaseBreakdown()
        for trace in run.iterations:
            summed += trace.breakdown
        assert summed.total == pytest.approx(run.breakdown.total)
        assert summed.kernel == pytest.approx(run.breakdown.kernel)

    def test_energy_positive_and_composed(self, graphs, system):
        run = bfs(graphs["A302"], 0, system, DPUS)
        assert run.energy.static_j > 0
        assert run.energy.total_j == pytest.approx(
            run.energy.static_j + run.energy.dynamic_j
            + run.energy.transfer_j
        )

    def test_bytes_accounted_per_iteration(self, graphs, system):
        run = bfs(graphs["A302"], 0, system, DPUS)
        for trace in run.iterations:
            assert trace.bytes_loaded > 0
            assert trace.bytes_retrieved > 0

    def test_profile_merged_across_iterations(self, graphs, system):
        run = bfs(graphs["A302"], 0, system, DPUS)
        assert run.profile is not None
        assert run.profile.instructions.total_instructions > 0

    def test_shared_driver_consistency(self, graphs, system):
        """Reusing one driver across algorithms keeps results exact."""
        graph = graphs["p2p-24"]
        driver = MatvecDriver(graph, system, DPUS)
        first = bfs(graph, 0, system, DPUS, driver=driver)
        second = bfs(graph, 1 % graph.nrows, system, DPUS, driver=driver)
        assert np.array_equal(first.values, bfs_reference(graph, 0))
        assert np.array_equal(
            second.values, bfs_reference(graph, 1 % graph.nrows)
        )


class TestAdaptiveEndToEnd:
    def test_adaptive_never_loses_badly(self, graphs, system):
        """The paper's pitch: switching is at worst neutral vs SpMV-only."""
        from repro.algorithms.base import FixedPolicy

        graph = graphs["A302"]
        driver = MatvecDriver(graph, system, DPUS)
        spmv_only = bfs(graph, 0, system, DPUS,
                        policy=FixedPolicy("spmv"), driver=driver)
        adaptive = bfs(graph, 0, system, DPUS,
                       policy=AdaptiveSwitchPolicy.for_matrix(graph),
                       driver=driver)
        assert adaptive.total_s <= spmv_only.total_s * 1.05

    def test_switch_actually_happens_on_dense_traversals(self, graphs,
                                                         system):
        graph = graphs["face"]  # dense social graph: frontier explodes
        run = bfs(graph, 0, system, DPUS,
                  policy=AdaptiveSwitchPolicy.for_matrix(graph))
        kernels_used = {t.kernel_name for t in run.iterations}
        assert any(k.startswith("spmspv") for k in kernels_used)
        assert any(k.startswith("spmv-") for k in kernels_used)
