"""Smoke + shape tests for the experiment runners (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    DatasetCache,
    ExperimentConfig,
    PaperComparison,
    comparison_table,
    format_table,
    geomean,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig9_11,
    run_hardware_ablations,
    run_model_agreement,
    run_table2,
)

TINY = ExperimentConfig(scale=0.01, num_dpus=128, datasets=("A302", "face"))


@pytest.fixture(scope="module")
def cache():
    return DatasetCache(TINY)


class TestHelpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_format_table(self):
        text = format_table(["a", "b"], [(1, 2.5), ("x", 3.0)], title="T")
        assert text.startswith("T")
        assert "2.500" in text

    def test_comparison_table(self):
        points = [PaperComparison("speedup", 2.0, 3.0)]
        text = comparison_table(points, "check")
        assert "speedup" in text
        assert points[0].ratio == pytest.approx(1.5)

    def test_dataset_cache_reuses(self, cache):
        a = cache.get("A302")
        b = cache.get("A302")
        assert a is b
        assert cache.get("A302", weighted=True) is not a

    def test_cache_spec(self, cache):
        assert cache.spec("A302").name == "amazon0302"


class TestRunners:
    def test_fig2(self, cache):
        result = run_fig2(TINY, cache)
        assert result.rows
        report = result.format_report()
        assert "Fig. 2" in report and "GEOMEAN" in report
        # normalization: every 1-D total is exactly 1.0
        for row in result.rows:
            if row.kernel == "spmv-coo-nnz":
                assert row.normalized.total == pytest.approx(1.0)

    def test_fig4(self, cache):
        result = run_fig4(TINY, cache)
        assert ("bfs", "A302", "spmv-only") in result.curves
        assert "Fig. 4" in result.format_report()

    def test_fig5(self, cache):
        result = run_fig5(TINY, cache)
        assert set(result.csr_slowdown) == {0.01, 0.10, 0.50}
        # normalization: COO is the reference
        for density in (0.01, 0.10, 0.50):
            totals = result.totals(density)["spmspv-coo"]
            for value in totals.values():
                assert value == pytest.approx(1.0)

    def test_fig6(self, cache):
        result = run_fig6(TINY, cache)
        assert result.total_ratio(0.01) > 0
        assert "Fig. 6" in result.format_report()

    def test_fig7(self, cache):
        result = run_fig7(TINY, cache)
        for algorithm in ("bfs", "sssp", "ppr"):
            assert result.average_speedup(algorithm) > 0
        assert "adaptive" in result.format_report()

    def test_fig9_11(self, cache):
        result = run_fig9_11(TINY, cache, run_cycle_sim=True)
        assert result.cells
        cell = result.cells[0]
        assert set(cell.cycle_breakdown) == {"issue", "memory", "revolver", "rf"}
        assert sum(cell.cycle_breakdown.values()) == pytest.approx(1.0)
        assert sum(cell.instruction_mix.values()) == pytest.approx(1.0)
        assert cell.pipeline_sim is not None
        assert "Fig. 9" in result.format_report()

    def test_table2(self, cache):
        result = run_table2(TINY, cache)
        assert len(result.rows) == 13
        assert 0 <= result.classification_accuracy <= 1

    def test_hardware_ablations(self, cache):
        result = run_hardware_ablations(TINY, cache)
        names = [r.name for r in result.rows]
        assert "baseline" in names and "all three" in names
        assert result.speedup("baseline") == pytest.approx(1.0)

    def test_model_agreement(self):
        result = run_model_agreement(num_workloads=3, tasklets=4)
        assert len(result.cycle_ratios) == 3
        assert result.worst_ratio < 3.0
