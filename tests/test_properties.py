"""Cross-cutting property-based tests over the whole stack."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FixedPolicy, bfs, bfs_reference
from repro.kernels import prepare_kernel
from repro.semiring import BOOLEAN_OR_AND, MAX_MIN, MIN_PLUS, PLUS_TIMES
from repro.sparse import COOMatrix, random_sparse_vector, spmspv
from repro.types import DataType
from repro.upmem import (
    DpuConfig,
    Instruction,
    InstrClass,
    RevolverPipeline,
    SystemConfig,
    csc_spmspv_program,
)


def random_matrix(rng, n=40, density=0.15, dtype=np.int32):
    dense = (rng.random((n, n)) < density).astype(dtype)
    return COOMatrix.from_dense(dense)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from([1, 4, 16]),
       st.floats(0.0, 1.0))
def test_kernel_output_independent_of_dpu_count(seed, num_dpus, density):
    """The functional result never depends on how work is partitioned."""
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(40, density, rng=rng, dtype=np.int32)
    expected = spmspv(matrix, x, PLUS_TIMES)
    kernel = prepare_kernel("spmspv-csc-2d", matrix, num_dpus, system)
    assert kernel.run(x, PLUS_TIMES).output == expected


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_kernel_phases_always_nonnegative(seed):
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(40, float(rng.random()), rng=rng,
                             dtype=np.int32)
    for name in ("spmv-dcoo", "spmspv-csc-2d", "spmspv-coo"):
        result = prepare_kernel(name, matrix, 8, system).run(
            x, PLUS_TIMES
        )
        breakdown = result.breakdown
        assert breakdown.load >= 0
        assert breakdown.kernel > 0  # launch overhead floor
        assert breakdown.retrieve >= 0
        assert breakdown.merge >= 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100_000))
def test_bfs_policy_equivalence(seed):
    """All kernel policies compute identical BFS levels."""
    rng = np.random.default_rng(seed)
    n = 35
    edges = np.unique(rng.integers(0, n, (80, 2)), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if edges.size == 0:
        return
    graph = COOMatrix.from_edges(edges, n)
    system = SystemConfig(num_dpus=64)
    reference = bfs_reference(graph, 0)
    for kind in ("spmv", "spmspv"):
        run = bfs(graph, 0, system, 8, policy=FixedPolicy(kind))
        assert np.array_equal(run.values, reference), kind


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(0, 6), min_size=1, max_size=8),
    st.integers(1, 6),
)
def test_pipeline_conservation(column_lengths, tasklets):
    """The pipeline issues exactly the instructions it was given, and
    total cycles >= issued instructions (1 dispatch per cycle max)."""
    streams = [
        csc_spmspv_program(column_lengths,
                           rng=np.random.default_rng(t))
        for t in range(tasklets)
    ]
    stats = RevolverPipeline(DpuConfig()).run(streams)
    total = sum(len(s) for s in streams)
    assert stats.instructions_issued == total
    assert stats.cycles >= stats.issue_cycles
    assert stats.issue_cycles == total
    fractions = stats.breakdown_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100_000), st.floats(0.05, 0.95))
def test_semiring_consistency_across_kernels(seed, density):
    """SpMV and SpMSpV agree under every Table-1 semiring."""
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng, dtype=np.int32)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(40, density, rng=rng, dtype=np.int32)
    spmv = prepare_kernel("spmv-dcoo", matrix, 8, system)
    spmspv = prepare_kernel("spmspv-csc-2d", matrix, 8, system)
    for semiring in (PLUS_TIMES, BOOLEAN_OR_AND, MIN_PLUS):
        a = spmv.run(x, semiring).output
        b = spmspv.run(x, semiring).output
        assert a == b, semiring.name


# ---------------------------------------------------------------------------
# Differential oracle suite (PR 3): seeded random matrices in all three
# compressed formats, both kernel families, four semirings, checked
# bit-for-bit against an independent dense-NumPy oracle (and scipy for
# ordinary arithmetic).  Every assertion message carries the case seed so
# a failure is reproducible with `_differential_case(seed, semiring)`.
# ---------------------------------------------------------------------------

#: Cases per semiring.  Values are chosen so float results are exact
#: (min/max are order-independent; small-integer float addition is
#: exact), making bit-agreement a meaningful contract even for float64.
DIFFERENTIAL_CASES_PER_SEMIRING = 200

DIFFERENTIAL_SEMIRINGS = {
    "plus_times": (PLUS_TIMES, np.int64),
    "boolean_or_and": (BOOLEAN_OR_AND, np.int32),
    "min_plus": (MIN_PLUS, np.float64),
    "max_min": (MAX_MIN, np.float64),
}

_DIFFERENTIAL_KERNELS = ("spmv-dcoo", "spmspv-csc-2d")


def _seed_base(semiring_name: str) -> int:
    """Stable per-semiring seed base (``hash`` is process-randomized)."""
    return zlib.crc32(semiring_name.encode()) % 1_000_000


def _differential_case(seed: int, semiring_name: str):
    """Deterministically regenerate case ``seed`` for one semiring."""
    semiring, dtype = DIFFERENTIAL_SEMIRINGS[semiring_name]
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 33))
    density = float(rng.uniform(0.05, 0.4))
    mask = rng.random((n, n)) < density
    if not mask.any():
        mask[rng.integers(0, n), rng.integers(0, n)] = True
    if semiring_name == "boolean_or_and":
        values = np.ones((n, n), dtype=dtype)
    else:
        values = rng.integers(1, 10, (n, n)).astype(dtype)
    dense = np.where(mask, values, 0).astype(dtype)
    x_mask = rng.random(n) < float(rng.uniform(0.1, 0.9))
    if not x_mask.any():
        x_mask[rng.integers(0, n)] = True
    if semiring_name == "boolean_or_and":
        x_values = np.ones(int(x_mask.sum()), dtype=dtype)
    else:
        x_values = rng.integers(1, 10, int(x_mask.sum())).astype(dtype)
    from repro.sparse import SparseVector

    x = SparseVector(np.flatnonzero(x_mask), x_values, n)
    matrix = COOMatrix.from_dense(dense)
    fmt = ("coo", "csr", "csc")[seed % 3]
    if fmt == "csr":
        matrix = matrix.to_csr()
    elif fmt == "csc":
        matrix = matrix.to_csc()
    return matrix, dense, mask, x, x_mask, semiring, fmt


def _dense_oracle(dense, mask, x, x_mask, semiring):
    """Independent oracle: dense semiring matvec in plain NumPy.

    Structural semantics: only (stored matrix entry, present vector
    entry) pairs contribute; rows with no contribution are the additive
    identity.  Absent operands are filled with the *multiplicative*
    identity before the elementwise product so no NaNs can appear, then
    masked out with the additive identity before the row reduction
    (which is exact for these value distributions).
    """
    dtype = dense.dtype
    one = dtype.type(semiring.one)
    zero = dtype.type(semiring.zero)
    a_op = np.where(mask, dense, one)
    x_dense = np.full(dense.shape[1], one, dtype=dtype)
    x_dense[x.indices] = x.values
    prod = semiring.multiply(a_op, x_dense[None, :])
    prod = np.where(mask & x_mask[None, :], prod, zero)
    return semiring.add.reduce(prod, axis=1)


@pytest.mark.parametrize("semiring_name", sorted(DIFFERENTIAL_SEMIRINGS))
def test_differential_kernels_vs_numpy_oracle(semiring_name):
    """200 seeded cases per semiring: SpMV and SpMSpV agree bit-for-bit
    with the independent dense-NumPy oracle across COO/CSR/CSC."""
    system = SystemConfig(num_dpus=64)
    base = _seed_base(semiring_name)
    formats_seen = set()
    for case in range(DIFFERENTIAL_CASES_PER_SEMIRING):
        seed = base + case
        matrix, dense, mask, x, x_mask, semiring, fmt = \
            _differential_case(seed, semiring_name)
        formats_seen.add(fmt)
        expected = _dense_oracle(dense, mask, x, x_mask, semiring)
        for kernel_name in _DIFFERENTIAL_KERNELS:
            kernel = prepare_kernel(kernel_name, matrix,
                                    1 + seed % 8, system)
            got = kernel.run(x, semiring).output.to_dense(
                zero=semiring.zero
            )
            assert np.array_equal(got, expected), (
                f"seed={seed} semiring={semiring_name} "
                f"kernel={kernel_name} format={fmt}"
            )
    assert formats_seen == {"coo", "csr", "csc"}


def test_differential_scipy_crosscheck():
    """For ordinary arithmetic the oracle itself is cross-checked
    against scipy.sparse on every plus_times case."""
    scipy_sparse = pytest.importorskip("scipy.sparse")
    base = _seed_base("plus_times")
    for case in range(DIFFERENTIAL_CASES_PER_SEMIRING):
        seed = base + case
        _, dense, mask, x, x_mask, semiring, _ = \
            _differential_case(seed, "plus_times")
        expected = _dense_oracle(dense, mask, x, x_mask, semiring)
        x_dense = np.zeros(dense.shape[1], dtype=dense.dtype)
        x_dense[x.indices] = x.values
        via_scipy = scipy_sparse.csr_array(dense) @ x_dense
        assert np.array_equal(via_scipy, expected), f"seed={seed}"


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from(list(DataType)))
def test_kernels_handle_every_dtype(seed, datatype):
    """All four value types flow through the kernel path."""
    rng = np.random.default_rng(seed)
    np_dtype = np.dtype(datatype.value)
    dense = (rng.random((25, 25)) < 0.2)
    if datatype.is_float:
        values = (dense * rng.random((25, 25))).astype(np_dtype)
    else:
        values = dense.astype(np_dtype)
    matrix = COOMatrix.from_dense(values)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(25, 0.3, rng=rng, dtype=np_dtype)
    kernel = prepare_kernel("spmspv-csc-2d", matrix, 4, system)
    result = kernel.run(x, PLUS_TIMES)
    expected = spmspv(matrix, x, PLUS_TIMES)
    assert np.allclose(result.output.to_dense(), expected.to_dense(),
                       rtol=1e-5)
