"""Cross-cutting property-based tests over the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FixedPolicy, bfs, bfs_reference
from repro.kernels import prepare_kernel
from repro.semiring import BOOLEAN_OR_AND, MIN_PLUS, PLUS_TIMES
from repro.sparse import COOMatrix, random_sparse_vector, spmspv
from repro.types import DataType
from repro.upmem import (
    DpuConfig,
    Instruction,
    InstrClass,
    RevolverPipeline,
    SystemConfig,
    csc_spmspv_program,
)


def random_matrix(rng, n=40, density=0.15, dtype=np.int32):
    dense = (rng.random((n, n)) < density).astype(dtype)
    return COOMatrix.from_dense(dense)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000), st.sampled_from([1, 4, 16]),
       st.floats(0.0, 1.0))
def test_kernel_output_independent_of_dpu_count(seed, num_dpus, density):
    """The functional result never depends on how work is partitioned."""
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(40, density, rng=rng, dtype=np.int32)
    expected = spmspv(matrix, x, PLUS_TIMES)
    kernel = prepare_kernel("spmspv-csc-2d", matrix, num_dpus, system)
    assert kernel.run(x, PLUS_TIMES).output == expected


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_kernel_phases_always_nonnegative(seed):
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(40, float(rng.random()), rng=rng,
                             dtype=np.int32)
    for name in ("spmv-dcoo", "spmspv-csc-2d", "spmspv-coo"):
        result = prepare_kernel(name, matrix, 8, system).run(
            x, PLUS_TIMES
        )
        breakdown = result.breakdown
        assert breakdown.load >= 0
        assert breakdown.kernel > 0  # launch overhead floor
        assert breakdown.retrieve >= 0
        assert breakdown.merge >= 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100_000))
def test_bfs_policy_equivalence(seed):
    """All kernel policies compute identical BFS levels."""
    rng = np.random.default_rng(seed)
    n = 35
    edges = np.unique(rng.integers(0, n, (80, 2)), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if edges.size == 0:
        return
    graph = COOMatrix.from_edges(edges, n)
    system = SystemConfig(num_dpus=64)
    reference = bfs_reference(graph, 0)
    for kind in ("spmv", "spmspv"):
        run = bfs(graph, 0, system, 8, policy=FixedPolicy(kind))
        assert np.array_equal(run.values, reference), kind


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(0, 6), min_size=1, max_size=8),
    st.integers(1, 6),
)
def test_pipeline_conservation(column_lengths, tasklets):
    """The pipeline issues exactly the instructions it was given, and
    total cycles >= issued instructions (1 dispatch per cycle max)."""
    streams = [
        csc_spmspv_program(column_lengths,
                           rng=np.random.default_rng(t))
        for t in range(tasklets)
    ]
    stats = RevolverPipeline(DpuConfig()).run(streams)
    total = sum(len(s) for s in streams)
    assert stats.instructions_issued == total
    assert stats.cycles >= stats.issue_cycles
    assert stats.issue_cycles == total
    fractions = stats.breakdown_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100_000), st.floats(0.05, 0.95))
def test_semiring_consistency_across_kernels(seed, density):
    """SpMV and SpMSpV agree under every Table-1 semiring."""
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng, dtype=np.int32)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(40, density, rng=rng, dtype=np.int32)
    spmv = prepare_kernel("spmv-dcoo", matrix, 8, system)
    spmspv = prepare_kernel("spmspv-csc-2d", matrix, 8, system)
    for semiring in (PLUS_TIMES, BOOLEAN_OR_AND, MIN_PLUS):
        a = spmv.run(x, semiring).output
        b = spmspv.run(x, semiring).output
        assert a == b, semiring.name


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from(list(DataType)))
def test_kernels_handle_every_dtype(seed, datatype):
    """All four value types flow through the kernel path."""
    rng = np.random.default_rng(seed)
    np_dtype = np.dtype(datatype.value)
    dense = (rng.random((25, 25)) < 0.2)
    if datatype.is_float:
        values = (dense * rng.random((25, 25))).astype(np_dtype)
    else:
        values = dense.astype(np_dtype)
    matrix = COOMatrix.from_dense(values)
    system = SystemConfig(num_dpus=64)
    x = random_sparse_vector(25, 0.3, rng=rng, dtype=np_dtype)
    kernel = prepare_kernel("spmspv-csc-2d", matrix, 4, system)
    result = kernel.run(x, PLUS_TIMES)
    expected = spmspv(matrix, x, PLUS_TIMES)
    assert np.allclose(result.output.to_dense(), expected.to_dense(),
                       rtol=1e-5)
