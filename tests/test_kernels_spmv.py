"""Tests for the SpMV kernels (SparseP COO.nnz and DCOO)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import (
    gather_miss_rate,
    prepare_spmv_1d,
    prepare_spmv_2d,
)
from repro.semiring import BOOLEAN_OR_AND, MIN_PLUS, PLUS_TIMES
from repro.sparse import SparseVector, random_sparse_vector, spmv_dense
from repro.upmem import SystemConfig
from conftest import random_graph


@pytest.fixture
def system():
    return SystemConfig(num_dpus=64)


@pytest.fixture
def float_matrix():
    g = random_graph(n=200, avg_degree=6, seed=3)
    rng = np.random.default_rng(3)
    from repro.sparse import COOMatrix

    return COOMatrix(
        g.rows, g.cols, rng.uniform(0.2, 2.0, g.nnz).astype(np.float32),
        g.shape,
    )


class TestCorrectness:
    @pytest.mark.parametrize("prepare", [prepare_spmv_1d, prepare_spmv_2d])
    def test_matches_reference(self, prepare, float_matrix, system):
        kernel = prepare(float_matrix, 64, system)
        x = np.random.default_rng(1).random(200).astype(np.float32)
        result = kernel.run(x, PLUS_TIMES)
        expected = spmv_dense(float_matrix, x)
        assert np.allclose(result.output.to_dense(), expected, rtol=1e-5)

    @pytest.mark.parametrize("prepare", [prepare_spmv_1d, prepare_spmv_2d])
    def test_min_plus(self, prepare, system):
        matrix = random_graph(n=150, seed=5, weights="random")
        kernel = prepare(matrix, 32, system)
        x = np.full(150, np.inf)
        x[0] = 0.0
        result = kernel.run(x, MIN_PLUS)
        expected = spmv_dense(matrix, x, MIN_PLUS)
        got = result.output.to_dense(zero=np.inf)
        assert np.allclose(got[np.isfinite(expected)],
                           expected[np.isfinite(expected)])

    def test_accepts_sparse_vector_input(self, float_matrix, system):
        kernel = prepare_spmv_1d(float_matrix, 16, system)
        x = random_sparse_vector(200, 0.3, rng=np.random.default_rng(2),
                                 dtype=np.float32)
        result = kernel.run(x, PLUS_TIMES)
        expected = spmv_dense(float_matrix, x.to_dense())
        assert np.allclose(result.output.to_dense(), expected, rtol=1e-5)

    def test_rejects_wrong_length(self, float_matrix, system):
        kernel = prepare_spmv_1d(float_matrix, 16, system)
        with pytest.raises(KernelError):
            kernel.run(np.zeros(7), PLUS_TIMES)


class TestTiming:
    def test_all_phases_accounted(self, float_matrix, system):
        kernel = prepare_spmv_2d(float_matrix, 64, system)
        x = np.ones(200, dtype=np.float32)
        result = kernel.run(x, PLUS_TIMES)
        b = result.breakdown
        assert b.load > 0 and b.kernel > 0 and b.retrieve > 0
        assert b.merge >= 0
        assert result.bytes_loaded > 0
        assert result.bytes_retrieved > 0

    def test_1d_broadcast_load_exceeds_2d(self, system):
        matrix = random_graph(n=2000, avg_degree=8, seed=7)
        x = np.ones(2000, dtype=np.int32)
        load_1d = prepare_spmv_1d(matrix, 64, system).run(
            x, PLUS_TIMES
        ).breakdown.load
        load_2d = prepare_spmv_2d(matrix, 64, system).run(
            x, PLUS_TIMES
        ).breakdown.load
        assert load_1d > load_2d

    def test_kernel_includes_launch_overhead(self, float_matrix, system):
        kernel = prepare_spmv_1d(float_matrix, 16, system)
        result = kernel.run(np.ones(200, dtype=np.float32), PLUS_TIMES)
        assert result.breakdown.kernel >= system.dpu.launch_overhead_s

    def test_profile_attached(self, float_matrix, system):
        kernel = prepare_spmv_1d(float_matrix, 16, system)
        result = kernel.run(np.ones(200, dtype=np.float32), PLUS_TIMES)
        assert result.profile.num_dpus == 16
        assert result.profile.instructions.total_instructions > 0
        assert result.achieved_ops > 0

    def test_float_kernel_slower_than_int(self, system):
        """Software-emulated FP makes float SpMV kernels slower."""
        int_matrix = random_graph(n=500, avg_degree=8, seed=9)
        from repro.sparse import COOMatrix

        float_matrix = COOMatrix(
            int_matrix.rows, int_matrix.cols,
            int_matrix.values.astype(np.float32), int_matrix.shape,
        )
        x_int = np.ones(500, dtype=np.int32)
        x_float = np.ones(500, dtype=np.float32)
        t_int = prepare_spmv_1d(int_matrix, 16, system).run(
            x_int, PLUS_TIMES
        ).breakdown.kernel
        t_float = prepare_spmv_1d(float_matrix, 16, system).run(
            x_float, PLUS_TIMES
        ).breakdown.kernel
        assert t_float > t_int


class TestGatherMissRate:
    def test_small_span_hits(self):
        assert gather_miss_rate(100, 4) == 0.0

    def test_large_span_misses(self):
        rate = gather_miss_rate(1_000_000, 4)
        assert 0.9 < rate < 1.0

    def test_monotone_in_span(self):
        rates = [gather_miss_rate(s, 4) for s in (10, 10_000, 100_000)]
        assert rates == sorted(rates)

    def test_zero_span(self):
        assert gather_miss_rate(0, 4) == 0.0
