"""Differential equivalence suite for the vectorized semiring engine.

PR 4 replaces the generic ``np.ufunc.at`` scatter-reduce with
structure-aware fast paths (``bincount`` for sums, ``reduceat`` over
cached segments for min/max/or).  The engine's contract is *bitwise*
equivalence with the legacy path on a fresh identity target; this suite
enforces it with >= 200 seeded random cases per standard semiring,
crossing:

* index patterns — unsorted with duplicates, sorted with duplicates
  (and cached segments), empty, all-one-target, and no-contribution
  outputs interleaved with heavy collision outputs;
* dtypes — int32, float32, float64 and bool;
* both engine entry points — ``reduce_by_index`` (with and without
  segments) and the matrix-level ``row_reduce``.

Every assertion message carries the case seed so a failure reproduces
with ``_engine_case(seed, semiring_name)`` (same style as the PR 3
differential oracle suite in ``test_properties.py``).
"""

import zlib

import numpy as np
import pytest

from repro.semiring import (
    BOOLEAN_OR_AND,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
)
from repro.semiring import engine as eng
from repro.sparse import COOMatrix

#: Seeded cases per semiring (x4 semirings = 960 total, >= 200 required).
CASES_PER_SEMIRING = 240

#: dtype pool; bool is swapped for int32 on semirings whose identities
#: cannot live in bool (min_plus/max_min use +-inf).
DTYPES = (np.int32, np.float32, np.float64, np.bool_)

SEMIRINGS = {
    "plus_times": PLUS_TIMES,
    "boolean_or_and": BOOLEAN_OR_AND,
    "min_plus": MIN_PLUS,
    "max_min": MAX_MIN,
}


def _seed_base(name: str) -> int:
    """Stable per-semiring seed base (``hash`` is process-randomized)."""
    return zlib.crc32(("engine:" + name).encode()) % 1_000_000


def _engine_case(seed: int, semiring_name: str):
    """Deterministically regenerate case ``seed`` for one semiring.

    Returns ``(indices, contribs, size, sorted_flag)``; ``indices`` may
    be empty, unsorted, duplicated, or concentrated on few outputs.
    """
    semiring = SEMIRINGS[semiring_name]
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 80))
    dtype = np.dtype(DTYPES[seed % len(DTYPES)])
    if dtype == np.bool_ and isinstance(semiring.zero, float) \
            and np.isinf(semiring.zero):
        dtype = np.dtype(np.int32)  # bool cannot hold an inf identity
    pattern = seed % 5
    if pattern == 0:
        nnz = 0
    elif pattern == 1:
        nnz = int(rng.integers(1, 4))          # nearly empty
    elif pattern == 2:
        nnz = int(rng.integers(size, 4 * size + 1))  # heavy duplicates
    else:
        nnz = int(rng.integers(1, 2 * size + 1))
    indices = rng.integers(0, size, nnz)
    if pattern == 2:
        # collision-heavy: squeeze all contributions onto a few outputs
        indices = indices % max(1, size // 4)
    is_sorted = bool(seed % 2)
    if is_sorted:
        indices = np.sort(indices)
    if semiring_name == "boolean_or_and":
        # declared {zero, one} domain (the 'or' reduce-mode contract)
        contribs = rng.integers(0, 2, nnz).astype(dtype)
    elif dtype == np.bool_:
        contribs = rng.integers(0, 2, nnz).astype(dtype)
    else:
        contribs = rng.integers(1, 10, nnz).astype(dtype)
    return indices.astype(np.int64), contribs, size, is_sorted


def _segments_of(indices: np.ndarray, size: int) -> np.ndarray:
    counts = np.bincount(indices, minlength=size) if indices.size \
        else np.zeros(size, dtype=np.int64)
    seg = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg[1:])
    return seg


def _legacy_reduce(semiring: Semiring, indices, contribs, size, dtype):
    y = semiring.zeros(size, dtype=dtype)
    if contribs.shape[0]:
        semiring.add.at(y, indices, contribs)
    return y


def _assert_bit_identical(fast, legacy, msg):
    assert fast.dtype == legacy.dtype, f"{msg}: dtype {fast.dtype} != {legacy.dtype}"
    assert fast.shape == legacy.shape, f"{msg}: shape {fast.shape} != {legacy.shape}"
    assert fast.tobytes() == legacy.tobytes(), (
        f"{msg}: outputs differ bitwise "
        f"(max |delta| where comparable: "
        f"{np.max(np.abs(fast.astype(np.float64) - legacy.astype(np.float64))) if fast.size else 0})"
    )


@pytest.fixture(autouse=True)
def _restore_engine_mode():
    # Pin fast mode so path-dispatch assertions hold even when the
    # suite itself runs under REPRO_SEMIRING_ENGINE=legacy (the CI
    # differential leg); tests that need legacy set it explicitly.
    eng.set_engine_mode("fast")
    yield
    eng.set_engine_mode(None)


@pytest.mark.parametrize("semiring_name", sorted(SEMIRINGS))
def test_engine_bitwise_equivalent_to_legacy(semiring_name):
    """240 seeded cases per semiring: every fast path == ufunc.at bitwise."""
    semiring = SEMIRINGS[semiring_name]
    base = _seed_base(semiring_name)
    fast_paths_taken = set()
    for case in range(CASES_PER_SEMIRING):
        seed = base + case
        indices, contribs, size, is_sorted = _engine_case(seed, semiring_name)
        legacy = _legacy_reduce(
            semiring, indices, contribs, size, contribs.dtype
        )
        before = dict(eng.STATS.paths)
        eng.set_engine_mode("fast")
        fast = eng.reduce_by_index(
            semiring, indices, contribs, size, dtype=contribs.dtype
        )
        if is_sorted:
            seg = _segments_of(indices, size)
            fast_seg = eng.reduce_by_index(
                semiring, indices, contribs, size,
                dtype=contribs.dtype, segments=seg,
            )
            _assert_bit_identical(
                fast_seg, legacy,
                f"seed={seed} semiring={semiring_name} path=segments",
            )
        eng.set_engine_mode("legacy")
        via_engine_legacy = eng.reduce_by_index(
            semiring, indices, contribs, size, dtype=contribs.dtype
        )
        eng.set_engine_mode(None)
        for path, n in eng.STATS.paths.items():
            if n > before.get(path, 0):
                fast_paths_taken.add(path)
        _assert_bit_identical(
            fast, legacy, f"seed={seed} semiring={semiring_name} path=auto"
        )
        _assert_bit_identical(
            via_engine_legacy, legacy,
            f"seed={seed} semiring={semiring_name} path=legacy",
        )
    # the sweep must actually exercise a vectorized path (not all fallback)
    assert fast_paths_taken & set(eng.EngineStats.FAST_PATHS), (
        f"{semiring_name}: no fast path taken in {CASES_PER_SEMIRING} cases "
        f"(paths seen: {sorted(fast_paths_taken)})"
    )


@pytest.mark.parametrize("semiring_name", sorted(SEMIRINGS))
def test_row_reduce_matches_legacy_on_matrices(semiring_name):
    """Matrix-level entry point: cached segments across repeat iterations."""
    semiring = SEMIRINGS[semiring_name]
    base = _seed_base(semiring_name) + 10_000
    for case in range(25):
        seed = base + case
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        mask = rng.random((n, n)) < 0.25
        values = np.where(mask, rng.integers(1, 10, (n, n)), 0)
        if semiring_name == "boolean_or_and":
            values = np.where(mask, 1, 0)
        matrix = COOMatrix.from_dense(values.astype(np.int32))
        coo = matrix.to_coo()
        contribs = coo.values.astype(np.float64)
        legacy = _legacy_reduce(
            semiring, coo.rows, contribs, n, np.float64
        )
        for repeat in range(3):  # 2nd/3rd iterations hit cached segments
            fast = eng.row_reduce(semiring, coo, contribs, dtype=np.float64)
            _assert_bit_identical(
                fast, legacy,
                f"seed={seed} semiring={semiring_name} repeat={repeat}",
            )


def test_or_mask_primitive_matches_maximum_at():
    """The masking primitive itself (kept for {0,1} domains) is exact."""
    for seed in range(50):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 60))
        nnz = int(rng.integers(0, 3 * size + 1))
        indices = rng.integers(0, size, nnz)
        contribs = rng.integers(0, 2, nnz).astype(np.int32)
        legacy = _legacy_reduce(
            BOOLEAN_OR_AND, indices, contribs, size, np.int32
        )
        fast = eng.or_mask_reduce(
            BOOLEAN_OR_AND.zeros(size, np.int32), indices, contribs,
            BOOLEAN_OR_AND,
        )
        _assert_bit_identical(fast, legacy, f"seed={seed} path=or_mask")


def test_reduce_by_index_2d_blocked():
    """2-D (SpMM-shaped) contributions: per-column bit-identity."""
    for seed in range(30):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, 40))
        nnz = int(rng.integers(0, 3 * size))
        k = int(rng.integers(1, 6))
        indices = np.sort(rng.integers(0, size, nnz)).astype(np.int64)
        contribs = rng.integers(1, 9, (nnz, k)).astype(np.float64)
        seg = _segments_of(indices, size)
        for semiring in (PLUS_TIMES, MIN_PLUS, MAX_MIN):
            y = semiring.zeros(size * k, np.float64).reshape(size, k)
            if nnz:
                semiring.add.at(y, indices, contribs)
            fast = eng.reduce_by_index(
                semiring, indices, contribs, size,
                dtype=np.float64, segments=seg,
            )
            _assert_bit_identical(
                fast, y, f"seed={seed} semiring={semiring.name} 2d"
            )


class TestEngineDispatch:
    """The declared dispatch matrix is actually what runs."""

    def _path_taken(self, fn):
        before = dict(eng.STATS.paths)
        fn()
        after = eng.STATS.paths
        return {p for p in after if after[p] > before.get(p, 0)}

    def test_sum_float64_uses_bincount(self):
        idx = np.array([0, 2, 2, 1], dtype=np.int64)
        c = np.ones(4)
        paths = self._path_taken(
            lambda: eng.reduce_by_index(PLUS_TIMES, idx, c, 3)
        )
        assert "sum_bincount" in paths

    def test_sum_float32_falls_back(self):
        """float32 accumulates in-dtype under add.at; bincount cannot
        reproduce that, so the engine must not try."""
        idx = np.array([0, 0, 1], dtype=np.int64)
        c = np.ones(3, dtype=np.float32)
        paths = self._path_taken(
            lambda: eng.reduce_by_index(PLUS_TIMES, idx, c, 2)
        )
        assert "fallback" in paths

    def test_min_with_segments_uses_reduceat(self):
        idx = np.array([0, 0, 2], dtype=np.int64)
        c = np.array([3.0, 1.0, 2.0])
        seg = _segments_of(idx, 3)
        paths = self._path_taken(
            lambda: eng.reduce_by_index(
                MIN_PLUS, idx, c, 3, segments=seg
            )
        )
        assert "minmax_reduceat" in paths

    def test_legacy_mode_forces_ufunc_at(self):
        eng.set_engine_mode("legacy")
        try:
            idx = np.array([0, 1], dtype=np.int64)
            paths = self._path_taken(
                lambda: eng.reduce_by_index(PLUS_TIMES, idx, np.ones(2), 2)
            )
            assert paths == {"legacy"}
        finally:
            eng.set_engine_mode(None)

    def test_generic_semiring_falls_back(self):
        odd = Semiring(
            name="logical-xor-and", add=np.logical_xor,
            multiply=np.logical_and, zero=0, one=1,
        )
        idx = np.array([0, 0, 1], dtype=np.int64)
        c = np.array([True, True, True])
        legacy = _legacy_reduce(odd, idx, c, 2, np.bool_)
        paths = self._path_taken(
            lambda: eng.reduce_by_index(odd, idx, c, 2, dtype=np.bool_)
        )
        assert "generic" in paths
        assert np.array_equal(
            eng.reduce_by_index(odd, idx, c, 2, dtype=np.bool_), legacy
        )

    def test_mode_override_and_env_validation(self):
        with pytest.raises(ValueError):
            eng.set_engine_mode("turbo")
        eng.set_engine_mode("legacy")
        assert eng.engine_mode() == "legacy"
        eng.set_engine_mode(None)
        assert eng.engine_mode() in ("fast", "legacy")

    def test_env_escape_hatch(self, monkeypatch):
        eng.set_engine_mode(None)  # env only wins without an override
        monkeypatch.setenv(eng.ENV_VAR, "legacy")
        assert eng.engine_mode() == "legacy"
        monkeypatch.setenv(eng.ENV_VAR, "fast")
        assert eng.engine_mode() == "fast"


class TestStructureCache:
    def test_segments_match_csr_indptr(self):
        rng = np.random.default_rng(3)
        matrix = COOMatrix.from_dense(
            ((rng.random((30, 30)) < 0.2) * 1).astype(np.int32)
        )
        coo = matrix.to_coo()
        seg = eng.row_segments(coo)
        assert np.array_equal(seg, matrix.to_csr().row_ptr)

    def test_instance_memo_and_content_key(self):
        from repro.cache import clear_caches

        clear_caches()
        rng = np.random.default_rng(4)
        dense = ((rng.random((25, 25)) < 0.3) * 1).astype(np.int32)
        a = COOMatrix.from_dense(dense)
        seg_a = eng.row_segments(a)
        assert eng.STATS.segment_misses == 1
        # same instance: memo hit, no second build
        assert eng.row_segments(a) is seg_a
        # value-rebound twin (same structure, new instance): content hit
        twin = COOMatrix.from_sorted(
            a.rows, a.cols, a.values * 2, a.shape
        )
        assert eng.row_segments(twin) is seg_a
        assert eng.STATS.segment_misses == 1
        assert eng.STATS.segment_hits >= 2

    def test_stats_exposed_via_cache_stats(self):
        from repro.cache import cache_stats, clear_caches

        clear_caches()
        report = cache_stats()
        assert "semiring_engine" in report
        engine_stats = report["semiring_engine"]
        assert engine_stats["hits"] == 0 and engine_stats["misses"] == 0
        eng.reduce_by_index(
            PLUS_TIMES, np.array([0], dtype=np.int64), np.ones(1), 1
        )
        after = cache_stats()["semiring_engine"]
        assert after["hits"] + after["misses"] == 1
        assert set(after) >= {
            "mode", "hits", "misses", "hit_rate", "paths",
            "segment_hits", "segment_misses",
        }


class TestEmptyReduceDtype:
    """Satellite regression: Semiring.reduce on empty input keeps dtype."""

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32,
                                       np.float64, np.bool_])
    def test_plus_times_empty(self, dtype):
        out = PLUS_TIMES.reduce(np.empty(0, dtype=dtype))
        assert np.asarray(out).dtype == np.dtype(dtype)
        assert out == 0

    def test_boolean_empty_stays_bool(self):
        out = BOOLEAN_OR_AND.reduce(np.empty(0, dtype=np.bool_))
        assert np.asarray(out).dtype == np.bool_
        assert out == False  # noqa: E712 - exact identity

    @pytest.mark.parametrize("semiring,expected", [
        (MIN_PLUS, np.inf), (MAX_MIN, -np.inf),
    ])
    def test_infinite_identity_upcasts_integers(self, semiring, expected):
        # integer dtypes cannot hold the identity: float64, like zeros()
        out = semiring.reduce(np.empty(0, dtype=np.int32))
        assert np.asarray(out).dtype == np.float64
        assert out == expected
        # float32 *can* hold inf: stays float32
        out32 = semiring.reduce(np.empty(0, dtype=np.float32))
        assert np.asarray(out32).dtype == np.float32

    def test_nonempty_unchanged(self):
        assert PLUS_TIMES.reduce(np.array([1, 2, 3])) == 6
        assert MIN_PLUS.reduce(np.array([3.0, 1.0])) == 1.0


class TestUniqueIndices:
    """Sort-free dedup primitive: bit-identical to np.unique on every path."""

    def test_mask_path_matches_unique(self):
        base = _seed_base("unique-mask")
        for case in range(60):
            seed = base + case
            rng = np.random.default_rng(seed)
            size = int(rng.integers(1, 5000))
            k = int(rng.integers(0, 4 * size))
            idx = rng.integers(0, size, k).astype(
                rng.choice([np.int32, np.int64])
            )
            got = eng.unique_indices(idx, size)
            want = np.unique(idx)
            assert got.dtype == want.dtype, f"seed={seed}"
            assert np.array_equal(got, want), f"seed={seed}"

    def test_sorted_path_over_huge_domain(self):
        eng.reset_stats()
        idx = np.sort(
            np.random.default_rng(7).integers(0, 1 << 40, 50_000)
        )
        got = eng.unique_indices(idx)  # no size: mask impossible
        assert np.array_equal(got, np.unique(idx))
        assert eng.STATS.paths.get("unique_sorted", 0) == 1

    def test_unsorted_huge_domain_falls_back_to_sort(self):
        eng.reset_stats()
        idx = np.random.default_rng(8).integers(0, 1 << 40, 10_000)
        got = eng.unique_indices(idx)
        assert np.array_equal(got, np.unique(idx))
        assert eng.STATS.paths.get("unique_sort", 0) == 1

    def test_legacy_mode_uses_np_unique(self):
        eng.set_engine_mode("legacy")
        idx = np.array([3, 1, 2, 1], dtype=np.int64)
        assert np.array_equal(
            eng.unique_indices(idx, 10), np.unique(idx)
        )

    def test_empty_input(self):
        out = eng.unique_indices(np.empty(0, dtype=np.int32), 5)
        assert out.size == 0 and out.dtype == np.int32


class TestDensityGate:
    """row_reduce only builds segments when reduceat can win."""

    def test_sparse_matrix_falls_back(self):
        eng.reset_stats()
        rng = np.random.default_rng(11)
        n, nnz = 500, 1000  # avg degree 2 << MINMAX_SEGMENT_DENSITY
        keys = rng.choice(n * n, size=nnz, replace=False)
        rows, cols = np.sort(keys) // n, np.sort(keys) % n
        coo = COOMatrix(rows, cols, rng.random(nnz), (n, n))
        eng.row_reduce(MIN_PLUS, coo, rng.random(coo.nnz))
        assert eng.STATS.paths.get("fallback", 0) == 1
        assert eng.STATS.paths.get("minmax_reduceat", 0) == 0

    def test_dense_matrix_uses_reduceat(self):
        eng.reset_stats()
        rng = np.random.default_rng(12)
        n = 64
        nnz = int(eng.MINMAX_SEGMENT_DENSITY * n) + n
        keys = rng.choice(n * n, size=nnz, replace=False)
        rows, cols = np.sort(keys) // n, np.sort(keys) % n
        coo = COOMatrix(rows, cols, rng.random(nnz), (n, n))
        contribs = rng.random(coo.nnz)
        fast = eng.row_reduce(MIN_PLUS, coo, contribs)
        assert eng.STATS.paths.get("minmax_reduceat", 0) == 1
        eng.set_engine_mode("legacy")
        legacy = eng.row_reduce(MIN_PLUS, coo, contribs)
        assert fast.dtype == legacy.dtype
        assert fast.tobytes() == legacy.tobytes()


class TestFallbackReasons:
    """Every fallback dispatch is attributed to a reason label (PR 6)."""

    def setup_method(self):
        eng.reset_stats()
        # reason labels attribute *fast-mode* fallbacks; pin the mode so
        # the CI legacy-engine differential leg doesn't change the topic
        eng.set_engine_mode("fast")

    def teardown_method(self):
        eng.set_engine_mode(None)

    def test_density_gate_reason(self):
        rng = np.random.default_rng(21)
        n, nnz = 500, 1000  # avg degree 2 << MINMAX_SEGMENT_DENSITY
        keys = rng.choice(n * n, size=nnz, replace=False)
        rows, cols = np.sort(keys) // n, np.sort(keys) % n
        coo = COOMatrix(rows, cols, rng.random(nnz), (n, n))
        eng.row_reduce(MIN_PLUS, coo, rng.random(coo.nnz))
        assert eng.STATS.fallback_reasons == {"density_gate": 1}

    def test_in_dtype_accumulation_reason(self):
        idx = np.array([0, 0, 1], dtype=np.int64)
        eng.reduce_by_index(PLUS_TIMES, idx, np.ones(3, dtype=np.float32), 2)
        assert eng.STATS.fallback_reasons == {"in_dtype_accumulation": 1}

    def test_unsorted_indices_reason(self):
        idx = np.array([2, 0, 1], dtype=np.int64)
        eng.reduce_by_index(MIN_PLUS, idx, np.ones(3), 3)
        assert eng.STATS.fallback_reasons == {"unsorted_indices": 1}

    def test_reasons_cover_every_fallback(self):
        """The reason counts always sum to the fallback path count."""
        rng = np.random.default_rng(22)
        for _ in range(5):
            idx = rng.integers(0, 50, size=200)
            eng.reduce_by_index(MIN_PLUS, idx, rng.random(200), 50)
            eng.reduce_by_index(
                PLUS_TIMES, idx, rng.random(200, dtype=np.float32), 50
            )
        assert (
            sum(eng.STATS.fallback_reasons.values())
            == eng.STATS.paths.get("fallback", 0)
        )
        assert "fallback_reasons" in eng.STATS.as_dict()

    def test_metrics_counter_carries_reason(self):
        from repro.observability import ObservabilitySession, activate, deactivate

        session = activate(ObservabilitySession(trace=False, metrics=True))
        try:
            idx = np.array([0, 0, 1], dtype=np.int64)
            eng.reduce_by_index(
                PLUS_TIMES, idx, np.ones(3, dtype=np.float32), 2
            )
            counters = {
                name: c.value
                for name, c in session.metrics._counters.items()
            }
        finally:
            deactivate()
        assert counters.get(
            "engine.reduce.fallback_reason.in_dtype_accumulation"
        ) == 1.0


class TestBenchShapeFastPath:
    """The hot BFS / PageRank loops ride the vectorized paths at the
    Table-4 bench shapes (scale-0.3 amazon0302, the perf-gate workload).

    The PIM-side float32 reduces *must* stay on ``ufunc.at`` for bit
    identity — the reason label attributes them — but the wall-clock-hot
    CPU trace loops (frontier dedup, float64 rank accumulation) have no
    such excuse.
    """

    @pytest.fixture(scope="class")
    def bench_matrix(self):
        from repro.datasets import get_dataset

        spec = get_dataset("A302")
        return spec.generate(scale=0.3, rng=np.random.default_rng(7))

    @pytest.fixture(autouse=True)
    def _fast_mode(self):
        eng.set_engine_mode("fast")
        yield
        eng.set_engine_mode(None)

    def test_pagerank_hot_loop_all_fast(self, bench_matrix):
        from repro.algorithms import pagerank_reference
        from repro.cache import clear_caches

        clear_caches()
        eng.reset_stats()
        pagerank_reference(bench_matrix)
        stats = eng.STATS
        assert stats.paths.get("sum_bincount", 0) > 0
        assert stats.paths.get("fallback", 0) == 0
        assert stats.paths.get("legacy", 0) == 0
        assert stats.fast == sum(stats.paths.values())

    def test_bfs_hot_loop_dedup_fast(self, bench_matrix):
        from repro.baselines import workload as wl
        from repro.cache import clear_caches

        clear_caches()
        eng.reset_stats()
        wl.clear_trace_memo()
        wl.bfs_trace(bench_matrix, 0)
        stats = eng.STATS
        # the per-level frontier dedup is the hot primitive: the masked /
        # run-boundary fast paths must carry the bulk of the levels
        fast_dedup = (
            stats.paths.get("unique_mask", 0)
            + stats.paths.get("unique_sorted", 0)
        )
        assert fast_dedup > 0
        assert fast_dedup >= stats.paths.get("unique_sort", 0)
        assert stats.paths.get("fallback", 0) == 0

    def test_pim_pagerank_fallbacks_are_attributed(self, bench_matrix):
        from repro.algorithms import pagerank
        from repro.cache import clear_caches
        from repro.upmem.config import SystemConfig

        clear_caches()
        eng.reset_stats()
        pagerank(bench_matrix, SystemConfig(num_dpus=512), 512)
        stats = eng.STATS
        assert (
            sum(stats.fallback_reasons.values())
            == stats.paths.get("fallback", 0)
        )
