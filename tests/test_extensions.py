"""Tests for the extension features: connected components, the inter-DPU
interconnect what-if, the density study, and the CLI runner."""

import numpy as np
import pytest

from repro.algorithms import (
    FixedPolicy,
    connected_components,
    connected_components_reference,
    symmetrize_unweighted,
)
from repro.errors import ReproError, UpmemError
from repro.experiments import (
    DatasetCache,
    ExperimentConfig,
    run_density_study,
    run_interconnect_ablation,
)
from repro.experiments.runner import REGISTRY, build_parser, main
from repro.sparse import COOMatrix
from repro.types import PhaseBreakdown
from repro.upmem import InterconnectConfig, InterconnectModel, SystemConfig
from conftest import random_graph

TINY = ExperimentConfig(scale=0.01, num_dpus=64, datasets=("A302", "face"))


def canonical(labels):
    """Map labels to a canonical partition id sequence for comparison."""
    first = {}
    out = []
    for label in labels:
        if label not in first:
            first[label] = len(first)
        out.append(first[label])
    return out


class TestConnectedComponents:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_union_find(self, seed):
        graph = random_graph(n=150, avg_degree=1.5, seed=seed)
        system = SystemConfig(num_dpus=32)
        run = connected_components(graph, system, 32)
        reference = connected_components_reference(graph)
        assert canonical(run.values) == canonical(reference)
        assert run.converged

    def test_isolated_vertices_own_components(self):
        graph = COOMatrix.from_edges([(0, 1)], 4)
        run = connected_components(graph, SystemConfig(num_dpus=8), 4)
        assert run.values[0] == run.values[1]
        assert len({run.values[0], run.values[2], run.values[3]}) == 3

    def test_single_component_ring(self):
        edges = [(i, (i + 1) % 20) for i in range(20)]
        graph = COOMatrix.from_edges(edges, 20)
        run = connected_components(graph, SystemConfig(num_dpus=8), 8)
        assert len(set(run.values.tolist())) == 1
        assert np.all(run.values == 0)

    def test_direction_ignored(self):
        # weak connectivity: a one-way chain is one component
        graph = COOMatrix.from_edges([(2, 1), (1, 0)], 3)
        run = connected_components(graph, SystemConfig(num_dpus=4), 2)
        assert len(set(run.values.tolist())) == 1

    def test_spmv_policy_agrees(self):
        graph = random_graph(n=100, avg_degree=2, seed=9)
        system = SystemConfig(num_dpus=16)
        a = connected_components(graph, system, 16,
                                 policy=FixedPolicy("spmv"))
        b = connected_components(graph, system, 16,
                                 policy=FixedPolicy("spmspv"))
        assert np.array_equal(a.values, b.values)

    def test_empty_graph_rejected(self):
        with pytest.raises(ReproError):
            connected_components(
                COOMatrix.empty(0), SystemConfig(num_dpus=4), 2
            )

    def test_symmetrize(self):
        graph = COOMatrix.from_edges([(0, 1)], 3)
        sym = symmetrize_unweighted(graph)
        dense = sym.to_dense()
        assert dense[0, 1] == 0 and dense[1, 0] == 0  # zero weights
        assert sym.nnz == 2  # both directions present
        assert np.array_equal(dense != np.inf, dense != np.inf)


class TestInterconnectModel:
    def test_exchange_time(self):
        model = InterconnectModel(InterconnectConfig(link_bandwidth=1e9,
                                                     exchange_latency_s=0.0))
        assert model.exchange_seconds(1e9, 1) == pytest.approx(1.0)
        assert model.exchange_seconds(1e9, 10) == pytest.approx(0.1)

    def test_latency_floor(self):
        model = InterconnectModel()
        assert model.exchange_seconds(0, 8) == pytest.approx(
            model.config.exchange_latency_s
        )

    def test_rewrite_keeps_kernel(self):
        model = InterconnectModel()
        original = PhaseBreakdown(load=1.0, kernel=2.0, retrieve=1.5,
                                  merge=0.1)
        rewritten = model.rewrite_iteration(original, 1024, 64)
        assert rewritten.kernel == 2.0
        assert rewritten.retrieve == 0.0
        assert rewritten.total < original.total

    def test_rejects_bad_args(self):
        model = InterconnectModel()
        with pytest.raises(UpmemError):
            model.exchange_seconds(-1, 4)
        with pytest.raises(UpmemError):
            model.exchange_seconds(10, 0)
        with pytest.raises(UpmemError):
            InterconnectModel(InterconnectConfig(link_bandwidth=0.0))

    def test_ablation_runs(self):
        cache = DatasetCache(TINY)
        result = run_interconnect_ablation(TINY, cache)
        assert result.rows
        for algorithm in ("bfs", "sssp", "ppr"):
            assert result.speedup(algorithm) > 1.0
        assert "interconnect" in result.format_report()


class TestDensityStudy:
    def test_runs_and_reports(self):
        cache = DatasetCache(TINY)
        result = run_density_study(TINY, cache, sources_per_dataset=2)
        assert len(result.rows) == len(TINY.datasets)
        assert 0 <= result.fraction_below_half <= 1
        assert "density" in result.format_report()

    def test_densities_bounded(self):
        cache = DatasetCache(TINY)
        result = run_density_study(TINY, cache, sources_per_dataset=1)
        for row in result.rows:
            assert np.all(row.densities >= 0)
            assert np.all(row.densities <= 1)


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_no_experiments(self):
        with pytest.raises(SystemExit):
            main([])

    def test_runs_to_stdout(self, capsys):
        code = main(["ablation-model", "--scale", "0.01", "--dpus", "64"])
        assert code == 0
        assert "Model-consistency" in capsys.readouterr().out

    def test_writes_reports(self, tmp_path, capsys):
        code = main([
            "table2", "--scale", "0.01", "--dpus", "64",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "table2.txt").exists()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiments == ["fig2"]
        assert args.seed == 7
