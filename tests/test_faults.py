"""Tests for the fault-injection + fault-tolerant execution layer.

Covers the determinism contract (same seed -> same fault schedule), each
fault mode in isolation, the retry -> quarantine -> re-dispatch state
machine, the unrecoverable escalation, and the tier-1 safety property:
with no plan supplied every run is bit-identical to the pre-fault-layer
simulator.
"""

import numpy as np
import pytest

from repro.algorithms import bfs, pagerank, sssp
from repro.algorithms.base import MatvecDriver
from repro.errors import (
    DpuFaultError,
    DpuTimeoutError,
    TransferCorruptionError,
    TransferError,
    UnrecoverableFaultError,
    UpmemError,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultLog,
    FaultPlan,
    FaultTolerantExecutor,
    ResilientDpuSet,
    checksum,
)
from repro.sparse import COOMatrix
from repro.upmem import Dpu, DpuSet, DpuState, SystemConfig, UpmemSystem
from repro.upmem.transfer import TransferModel

pytestmark = pytest.mark.faults


def small_graph(n=96, seed=3, weighted=False):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=4 * n)
    dst = (src + rng.integers(1, n, size=4 * n)) % n
    edges = list({(int(u), int(v)) for u, v in zip(src, dst) if u != v})
    matrix = COOMatrix.from_edges(edges, num_nodes=n)
    if weighted:
        from repro.datasets import add_weights

        matrix = add_weights(matrix, rng=rng)
    return matrix


def make_rset(num_dpus=8, plan=None, system=None):
    system = system or SystemConfig(num_dpus=max(num_dpus, 64))
    plan = plan or FaultPlan()
    transfer = TransferModel(system)
    dpus = [Dpu(i, system.dpu) for i in range(num_dpus)]
    inner = DpuSet(dpus, transfer, injector=FaultInjector(plan))
    return ResilientDpuSet(inner, plan)


class ScriptedInjector(FaultInjector):
    """Injector replaying a fixed script (for exact state-machine tests)."""

    def __init__(self, plan, launch_script=(), transfer_script=()):
        super().__init__(plan)
        self._launch = list(launch_script)
        self._transfer = list(transfer_script)

    def launch_fault_kinds(self, num_dpus):
        kinds = np.full(num_dpus, None, dtype=object)
        for i in range(num_dpus):
            kinds[i] = self._launch.pop(0) if self._launch else None
        return kinds

    def launch_fault(self):
        return self._launch.pop(0) if self._launch else None

    def transfer_fault_mask(self, num_legs):
        out = np.zeros(num_legs, dtype=bool)
        for i in range(num_legs):
            out[i] = self._transfer.pop(0) if self._transfer else False
        return out

    def transfer_fault(self):
        return self._transfer.pop(0) if self._transfer else False

    def rank_failure_mask(self, num_ranks):
        return np.zeros(num_ranks, dtype=bool)


def scripted_rset(num_dpus=4, plan=None, **scripts):
    plan = plan or FaultPlan(dpu_crash_rate=0.5)  # enabled, rates unused
    system = SystemConfig(num_dpus=64)
    dpus = [Dpu(i, system.dpu) for i in range(num_dpus)]
    inner = DpuSet(
        dpus, TransferModel(system),
        injector=ScriptedInjector(plan, **scripts),
    )
    return ResilientDpuSet(inner, plan)


class TestFaultPlan:
    def test_default_is_disabled(self):
        assert not FaultPlan().enabled
        assert not FaultPlan.disabled().enabled

    def test_uniform_enables_every_mode(self):
        plan = FaultPlan.uniform(0.1, seed=4)
        assert plan.enabled
        assert plan.dpu_crash_rate == 0.1
        assert plan.dpu_hang_rate == 0.05
        assert plan.transfer_corruption_rate == 0.1
        assert plan.rank_failure_rate > 0
        assert plan.seed == 4

    def test_rate_validation(self):
        with pytest.raises(UpmemError):
            FaultPlan(dpu_crash_rate=1.5)
        with pytest.raises(UpmemError):
            FaultPlan(transfer_corruption_rate=-0.1)
        with pytest.raises(UpmemError):
            FaultPlan(dpu_crash_rate=0.5, dpu_hang_rate=0.4,
                      mram_bitflip_rate=0.2)
        with pytest.raises(UpmemError):
            FaultPlan(quarantine_after=0)
        with pytest.raises(UpmemError):
            FaultPlan(max_retries=-1)

    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_base_s=1e-4, backoff_factor=2.0)
        assert plan.backoff_s(1) == pytest.approx(1e-4)
        assert plan.backoff_s(3) == pytest.approx(4e-4)
        assert plan.backoff_s(0) == 0.0

    def test_with_seed_and_hashable(self):
        plan = FaultPlan.uniform(0.05, seed=1)
        assert plan.with_seed(9).seed == 9
        assert plan.with_seed(9).dpu_crash_rate == plan.dpu_crash_rate
        # frozen + hashable: SystemConfig stays usable as a cache key
        assert hash(SystemConfig(num_dpus=64).with_faults(plan)) is not None

    def test_error_hierarchy(self):
        assert issubclass(DpuTimeoutError, DpuFaultError)
        assert issubclass(UnrecoverableFaultError, DpuFaultError)
        assert issubclass(TransferCorruptionError, TransferError)
        assert issubclass(DpuFaultError, UpmemError)


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan.uniform(0.3, seed=17)
        a, b = FaultInjector(plan), FaultInjector(plan)
        assert np.array_equal(a.transfer_fault_mask(64),
                              b.transfer_fault_mask(64))
        assert list(a.launch_fault_kinds(64)) == list(b.launch_fault_kinds(64))
        assert np.array_equal(a.rank_failure_mask(8), b.rank_failure_mask(8))

    def test_different_seed_different_schedule(self):
        plan = FaultPlan.uniform(0.3, seed=17)
        a = FaultInjector(plan)
        b = FaultInjector(plan.with_seed(18))
        assert not np.array_equal(a.transfer_fault_mask(256),
                                  b.transfer_fault_mask(256))

    def test_reset_rewinds_schedule(self):
        inj = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        first = inj.transfer_fault_mask(32)
        inj.reset()
        assert np.array_equal(first, inj.transfer_fault_mask(32))
        assert inj.draws == 32

    def test_corrupt_array_flips_exactly_one_bit(self):
        inj = FaultInjector(FaultPlan(seed=2))
        array = np.arange(16, dtype=np.int32)
        bad = inj.corrupt_array(array)
        assert bad.shape == array.shape and bad.dtype == array.dtype
        xor = np.bitwise_xor(array, bad)
        assert sum(bin(int(v)).count("1") for v in xor) == 1
        assert checksum(bad) != checksum(array)

    def test_corrupt_empty_array_is_noop(self):
        inj = FaultInjector(FaultPlan(seed=2))
        out = inj.corrupt_array(np.empty(0, dtype=np.float32))
        assert out.size == 0


class TestDpuHealth:
    def test_fault_recover_cycle(self):
        dpu = Dpu(0, SystemConfig(num_dpus=64).dpu)
        assert dpu.is_healthy
        dpu.mark_faulty(DpuState.CRASHED)
        assert not dpu.is_healthy and dpu.fault_streak == 1
        dpu.recover()
        assert dpu.is_healthy and dpu.fault_streak == 0

    def test_quarantine_is_sticky(self):
        dpu = Dpu(0, SystemConfig(num_dpus=64).dpu)
        dpu.quarantine()
        dpu.recover()
        assert dpu.is_quarantined
        dpu.mark_faulty(DpuState.CRASHED)
        assert dpu.is_quarantined
        dpu.reset()
        assert dpu.is_healthy


class TestAllocateValidation:
    def test_rejects_non_positive_and_oversize(self):
        system = UpmemSystem(SystemConfig(num_dpus=128))
        with pytest.raises(UpmemError):
            system.allocate(0)
        with pytest.raises(UpmemError):
            system.allocate(129)

    def test_rejects_cumulative_overallocation(self):
        system = UpmemSystem(SystemConfig(num_dpus=128))
        system.allocate(100, name="a")
        with pytest.raises(UpmemError, match="exceed"):
            system.allocate(64, name="b")
        # re-allocating the same name releases the old set first
        system.allocate(100, name="a")
        system.release("a")
        system.allocate(128, name="c")
        assert system.allocated_dpus == 128

    def test_release_unknown_name(self):
        system = UpmemSystem(SystemConfig(num_dpus=128))
        with pytest.raises(UpmemError):
            system.release("nope")

    def test_allocate_arms_injector_from_config(self):
        plan = FaultPlan.uniform(0.1, seed=3)
        system = UpmemSystem(SystemConfig(num_dpus=128).with_faults(plan))
        assert system.allocate(8).injector is not None
        plain = UpmemSystem(SystemConfig(num_dpus=128))
        assert plain.allocate(8).injector is None
        assert plain.allocate(8, name="f", fault_plan=plan).injector is not None


class TestGatherValidation:
    def test_gather_unknown_region_raises(self):
        system = UpmemSystem(SystemConfig(num_dpus=128))
        dpu_set = system.allocate(4)
        dpu_set.scatter_arrays(
            "x", [np.arange(4, dtype=np.int32)] * 4
        )
        with pytest.raises(TransferError, match="never scattered"):
            dpu_set.gather_arrays("y")
        arrays, _ = dpu_set.gather_arrays("x")
        assert len(arrays) == 4

    def test_scatter_shape_mismatch(self):
        system = UpmemSystem(SystemConfig(num_dpus=128))
        dpu_set = system.allocate(4)
        with pytest.raises(TransferError):
            dpu_set.scatter_arrays("x", [np.arange(4)] * 3)


class TestResilientRoundTrip:
    """scatter -> launch -> gather returns validated, exact shards."""

    def _roundtrip(self, rset, n=64):
        shards = np.array_split(np.arange(n, dtype=np.int64), rset.num_dpus)
        outs = [s * 2 for s in shards]
        rset.scatter_arrays("x", shards)
        rset.launch("y", lambda i: outs[i], kernel_seconds=1e-4)
        gathered, _ = rset.gather_arrays("y")
        assert len(gathered) == rset.num_dpus
        for got, want in zip(gathered, outs):
            assert np.array_equal(got, want)
        return rset.log

    def test_fault_free_logs_nothing(self):
        log = self._roundtrip(make_rset(8))
        assert log.num_events == 0
        assert log.recovery_seconds == 0.0

    def test_corruption_only_recovers_by_retry(self):
        plan = FaultPlan(transfer_corruption_rate=0.4, seed=9)
        log = self._roundtrip(make_rset(8, plan))
        assert log.num_injected > 0
        assert set(log.counts_by_kind()) <= {"corruption", "redispatch"}
        assert any(e.action == "retry-ok" for e in log.events)
        assert log.recovery_seconds > 0

    def test_crash_only(self):
        plan = FaultPlan(dpu_crash_rate=0.4, seed=9)
        log = self._roundtrip(make_rset(8, plan))
        kinds = {e.kind for e in log.events if e.kind in
                 {"crash", "hang", "bitflip", "corruption", "rank-failure"}}
        assert kinds == {"crash"}

    def test_hang_only_charges_timeout(self):
        plan = FaultPlan(dpu_hang_rate=0.5, seed=9, timeout_s=5e-3)
        rset = make_rset(8, plan)
        log = self._roundtrip(rset)
        hangs = [e for e in log.events if e.kind == "hang"]
        assert hangs
        assert all(e.recovery_s >= plan.timeout_s for e in hangs)

    def test_bitflip_only_detected_at_gather(self):
        plan = FaultPlan(mram_bitflip_rate=0.5, seed=9)
        log = self._roundtrip(make_rset(8, plan))
        flips = [e for e in log.events if e.kind == "bitflip"]
        assert flips
        # every latent flip was resolved (repaired by a clean re-read or
        # re-dispatched), never left pending
        assert all(e.action in ("repaired", "redispatch") for e in flips)

    def test_rank_failure_quarantines_whole_rank(self):
        # scan seeds for a schedule where exactly one of two ranks fails
        for seed in range(40):
            plan = FaultPlan(rank_failure_rate=0.4, seed=seed)
            rset = make_rset(128, plan, system=SystemConfig(num_dpus=128))
            try:
                log = self._roundtrip(rset, n=512)
            except UnrecoverableFaultError:
                continue  # both ranks died this seed; try another
            if len(log.failed_ranks) == 1:
                assert len(log.quarantined) >= 64
                assert len(rset.healthy_ids()) <= 64
                return
        pytest.fail("no seed produced a single-rank failure")

    def test_all_ranks_lost_is_unrecoverable(self):
        plan = FaultPlan(rank_failure_rate=1.0, seed=0)
        rset = make_rset(64, plan)
        shards = np.array_split(np.arange(64), 64)
        rset.scatter_arrays("x", shards)
        with pytest.raises(UnrecoverableFaultError):
            rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        assert any(e.action == "fatal" for e in rset.log.events)

    def test_all_dpus_crashing_is_unrecoverable(self):
        plan = FaultPlan(dpu_crash_rate=1.0, seed=0)
        rset = make_rset(4, plan)
        shards = np.array_split(np.arange(8), 4)
        rset.scatter_arrays("x", shards)
        with pytest.raises(UnrecoverableFaultError):
            rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)


class TestRetryQuarantineStateMachine:
    def test_transient_crash_retries_then_recovers(self):
        # DPU 0 crashes twice, then the retry succeeds (quarantine
        # threshold raised so the streak does not short-circuit)
        rset = scripted_rset(
            4,
            plan=FaultPlan(dpu_crash_rate=0.5, quarantine_after=5),
            launch_script=[FaultKind.CRASH, None, None, None,
                           FaultKind.CRASH, None],
        )
        shards = np.array_split(np.arange(8, dtype=np.int64), 4)
        rset.scatter_arrays("x", shards)
        rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        events = [e for e in rset.log.events if e.dpu_id == 0]
        assert events and events[0].action == "retry-ok"
        assert events[0].retries == 2
        assert rset.dpus[0].is_healthy

    def test_persistent_crash_quarantines_and_redispatches(self):
        plan = FaultPlan(dpu_crash_rate=0.5, max_retries=2,
                         quarantine_after=10)
        rset = scripted_rset(
            4, plan=plan,
            launch_script=[FaultKind.CRASH, None, None, None,
                           FaultKind.CRASH, FaultKind.CRASH, FaultKind.CRASH],
        )
        shards = np.array_split(np.arange(8, dtype=np.int64), 4)
        rset.scatter_arrays("x", shards)
        rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        assert rset.dpus[0].is_quarantined
        assert 0 in rset.log.quarantined
        actions = [e.action for e in rset.log.events if e.dpu_id == 0]
        assert actions == ["quarantine", "redispatch"]
        # the quarantined DPU's shard still comes back intact
        gathered, _ = rset.gather_arrays("y")
        assert np.array_equal(gathered[0], shards[0])

    def test_streak_short_circuits_retries(self):
        # quarantine_after=2: two consecutive faults quarantine even
        # though the retry budget (5) is not exhausted
        plan = FaultPlan(dpu_crash_rate=0.5, max_retries=5,
                         quarantine_after=2)
        rset = scripted_rset(
            2, plan=plan,
            launch_script=[FaultKind.HANG, None, FaultKind.HANG],
        )
        shards = [np.arange(4), np.arange(4, 8)]
        rset.scatter_arrays("x", shards)
        rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        quarantine = [e for e in rset.log.events
                      if e.dpu_id == 0 and e.action == "quarantine"]
        assert quarantine and quarantine[0].retries == 1

    def test_quarantine_persists_across_launches(self):
        plan = FaultPlan(dpu_crash_rate=0.5, max_retries=1,
                         quarantine_after=1)
        rset = scripted_rset(2, plan=plan,
                             launch_script=[FaultKind.CRASH, None])
        shards = [np.arange(4), np.arange(4, 8)]
        rset.scatter_arrays("x", shards)
        rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        assert rset.dpus[0].is_quarantined
        # second launch: no new faults scripted, victim still re-dispatched
        rset.launch("y", lambda i: shards[i] + 1, kernel_seconds=1e-4)
        gathered, _ = rset.gather_arrays("y")
        assert np.array_equal(gathered[0], shards[0] + 1)
        assert rset.dpus[0].is_quarantined


class TestAlgorithmsUnderFaults:
    SYSTEM = SystemConfig(num_dpus=64)
    PLAN = FaultPlan.uniform(0.05, seed=42)

    def test_bfs_bit_identical(self):
        matrix = small_graph()
        clean = bfs(matrix, 0, self.SYSTEM, 64)
        faulty = bfs(matrix, 0, self.SYSTEM, 64, fault_plan=self.PLAN)
        assert np.array_equal(clean.values, faulty.values)
        assert clean.fault_log is None
        assert faulty.fault_log is not None
        assert faulty.fault_log.num_injected > 0
        assert faulty.breakdown.total > clean.breakdown.total

    def test_sssp_bit_identical(self):
        matrix = small_graph(weighted=True)
        clean = sssp(matrix, 0, self.SYSTEM, 64)
        faulty = sssp(matrix, 0, self.SYSTEM, 64, fault_plan=self.PLAN)
        assert np.array_equal(clean.values, faulty.values)

    def test_pagerank_bit_identical(self):
        matrix = small_graph()
        clean = pagerank(matrix, self.SYSTEM, 64)
        faulty = pagerank(matrix, self.SYSTEM, 64, fault_plan=self.PLAN)
        assert np.array_equal(clean.values, faulty.values)
        assert faulty.fault_log.num_injected > 0

    def test_same_seed_same_schedule(self):
        matrix = small_graph()
        a = bfs(matrix, 0, self.SYSTEM, 64, fault_plan=self.PLAN)
        b = bfs(matrix, 0, self.SYSTEM, 64, fault_plan=self.PLAN)
        assert a.fault_log.schedule() == b.fault_log.schedule()
        assert a.breakdown.total == pytest.approx(b.breakdown.total)

    def test_different_seed_different_schedule(self):
        matrix = small_graph()
        a = bfs(matrix, 0, self.SYSTEM, 64, fault_plan=self.PLAN)
        b = bfs(matrix, 0, self.SYSTEM, 64,
                fault_plan=self.PLAN.with_seed(7))
        assert a.fault_log.schedule() != b.fault_log.schedule()

    def test_system_config_plan_is_picked_up(self):
        matrix = small_graph()
        system = self.SYSTEM.with_faults(self.PLAN)
        run = bfs(matrix, 0, system, 64)
        assert run.fault_log is not None
        assert run.fault_log.num_injected > 0
        assert np.array_equal(
            run.values, bfs(matrix, 0, self.SYSTEM, 64).values
        )

    def test_driver_reports_degradation(self):
        matrix = small_graph()
        plan = FaultPlan(dpu_crash_rate=0.2, seed=3, max_retries=1,
                         quarantine_after=1)
        driver = MatvecDriver(matrix, self.SYSTEM, 64, fault_plan=plan)
        run = bfs(matrix, 0, self.SYSTEM, 64, driver=driver)
        assert driver.healthy_dpus < 64
        assert run.fault_log is driver.fault_log
        assert len(run.fault_log.quarantined) == 64 - driver.healthy_dpus

    def test_summary_and_report_render(self):
        matrix = small_graph()
        run = bfs(matrix, 0, self.SYSTEM, 64, fault_plan=self.PLAN)
        summary = run.fault_log.summary()
        assert summary["injected"] == run.fault_log.num_injected
        assert set(summary["by_kind"])
        report = run.fault_log.format_report(limit=5)
        assert "fault log:" in report and "injected" in report


class TestDefaultOffRegression:
    """With injection off, everything is bit-identical to the plain path."""

    def test_disabled_plan_keeps_plain_driver(self):
        matrix = small_graph()
        system = SystemConfig(num_dpus=64)
        driver = MatvecDriver(matrix, system, 64,
                              fault_plan=FaultPlan.disabled())
        assert driver._fault_executor is None
        assert driver.fault_log is None
        assert driver.healthy_dpus == 64

    def test_runs_identical_with_and_without_disabled_plan(self):
        matrix = small_graph(weighted=True)
        system = SystemConfig(num_dpus=64)
        plain = sssp(matrix, 0, system, 64)
        explicit = sssp(matrix, 0, system, 64,
                        fault_plan=FaultPlan.disabled())
        assert np.array_equal(plain.values, explicit.values)
        assert plain.breakdown.total == explicit.breakdown.total
        assert plain.energy.total_j == explicit.energy.total_j
        assert explicit.fault_log is None

    def test_executor_zero_overhead_under_zero_rates(self):
        # an armed executor with an all-zero-rate plan must add no events
        matrix = small_graph()
        system = SystemConfig(num_dpus=64)
        executor = FaultTolerantExecutor(FaultPlan(), system, 64)
        driver = MatvecDriver(matrix, system, 64)
        driver._fault_executor = executor
        run = bfs(matrix, 0, system, 64, driver=driver)
        baseline = bfs(matrix, 0, system, 64)
        assert run.fault_log.num_events == 0
        assert np.array_equal(run.values, baseline.values)
        assert run.breakdown.total == pytest.approx(baseline.breakdown.total)
