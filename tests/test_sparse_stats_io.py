"""Tests for graph statistics and Matrix Market / edge-list I/O."""

import io

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sparse import (
    COOMatrix,
    compute_stats,
    density_trajectory,
    matrix_to_string,
    read_edge_list,
    read_matrix_market,
    write_matrix_market,
)


class TestStats:
    def test_known_graph(self):
        # star: node 0 points to 1, 2, 3
        m = COOMatrix.from_edges([(0, 1), (0, 2), (0, 3)], 4)
        stats = compute_stats(m)
        assert stats.num_nodes == 4
        assert stats.num_edges == 3
        # out-degrees: [3, 0, 0, 0]
        assert stats.average_degree == pytest.approx(0.75)
        assert stats.max_degree == 3
        assert stats.min_degree == 0

    def test_degree_std(self):
        # ring: every node out-degree 1 -> std 0
        edges = [(i, (i + 1) % 5) for i in range(5)]
        stats = compute_stats(COOMatrix.from_edges(edges, 5))
        assert stats.degree_std == pytest.approx(0.0)
        assert stats.degree_skew == 0.0

    def test_sparsity(self):
        m = COOMatrix.from_edges([(0, 1)], 10)
        assert compute_stats(m).sparsity == pytest.approx(0.01)

    def test_features(self):
        m = COOMatrix.from_edges([(0, 1), (1, 2)], 3)
        f = compute_stats(m).features
        assert f.average_degree == pytest.approx(2 / 3)

    def test_empty_matrix(self):
        stats = compute_stats(COOMatrix.empty(0))
        assert stats.num_nodes == 0 and stats.num_edges == 0


def test_density_trajectory():
    out = density_trajectory([1, 5, 10], 10)
    assert np.allclose(out, [0.1, 0.5, 1.0])
    assert np.all(density_trajectory([1, 2], 0) == 0)


class TestMatrixMarket:
    def test_roundtrip_real(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((12, 12)) < 0.2) * rng.random((12, 12))
        m = COOMatrix.from_dense(dense)
        buf = io.StringIO()
        write_matrix_market(m, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert np.allclose(back.to_dense(), dense)

    def test_roundtrip_integer(self):
        m = COOMatrix.from_edges([(0, 1), (2, 0)], 3, weights=[4, 9])
        text = matrix_to_string(m)
        assert "integer" in text
        back = read_matrix_market(io.StringIO(text))
        assert np.array_equal(back.to_dense(), m.to_dense())

    def test_pattern_format(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 2\n1 2\n3 1\n"
        )
        m = read_matrix_market(io.StringIO(text))
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 1

    def test_symmetric_format(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        m = read_matrix_market(io.StringIO(text))
        dense = m.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
        assert dense[2, 2] == 1.0
        assert m.nnz == 3  # diagonal not mirrored

    def test_comments_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n%% another\n"
            "2 2 1\n1 1 3.5\n"
        )
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 3.5

    def test_rejects_bad_header(self):
        with pytest.raises(DatasetError):
            read_matrix_market(io.StringIO("not a matrix\n"))

    def test_rejects_unsupported_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        with pytest.raises(DatasetError):
            read_matrix_market(io.StringIO(text))

    def test_rejects_truncated(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(DatasetError):
            read_matrix_market(io.StringIO(text))

    def test_file_path_roundtrip(self, tmp_path):
        m = COOMatrix.from_edges([(0, 1), (1, 2)], 3)
        path = tmp_path / "graph.mtx"
        write_matrix_market(m, path)
        back = read_matrix_market(path)
        assert np.array_equal(back.to_dense(), m.to_dense())


class TestEdgeList:
    def test_basic(self):
        text = "# comment\n0 1\n1 2\n2 0\n"
        m = read_edge_list(io.StringIO(text))
        assert m.nnz == 3
        assert m.shape == (3, 3)

    def test_explicit_node_count(self):
        m = read_edge_list(io.StringIO("0 1\n"), num_nodes=10)
        assert m.shape == (10, 10)

    def test_node_out_of_range(self):
        with pytest.raises(DatasetError):
            read_edge_list(io.StringIO("0 5\n"), num_nodes=3)

    def test_bad_line(self):
        with pytest.raises(DatasetError):
            read_edge_list(io.StringIO("0\n"))

    def test_empty(self):
        m = read_edge_list(io.StringIO("# nothing\n"), num_nodes=4)
        assert m.nnz == 0
