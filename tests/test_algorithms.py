"""Tests for BFS / SSSP / PPR on the simulated PIM system."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    FixedPolicy,
    MatvecDriver,
    bfs,
    bfs_reference,
    normalize_columns,
    ppr,
    ppr_reference,
    sssp,
    sssp_reference,
)
from repro.adaptive import AdaptiveSwitchPolicy
from repro.errors import KernelError, ReproError
from repro.sparse import COOMatrix
from repro.upmem import SystemConfig
from conftest import random_graph

DPUS = 64


@pytest.fixture
def system():
    return SystemConfig(num_dpus=DPUS)


class TestBfs:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed, system):
        graph = random_graph(n=150, avg_degree=4, seed=seed)
        result = bfs(graph, 0, system, DPUS)
        assert np.array_equal(result.values, bfs_reference(graph, 0))
        assert result.converged

    def test_policies_agree(self, graph, system):
        driver = MatvecDriver(graph, system, DPUS)
        levels = {}
        for policy in (FixedPolicy("spmv"), FixedPolicy("spmspv"),
                       AdaptiveSwitchPolicy.for_matrix(graph)):
            run = bfs(graph, 0, system, DPUS, policy=policy, driver=driver)
            levels[policy.describe()] = run.values
        results = list(levels.values())
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    def test_disconnected_nodes(self, system):
        graph = COOMatrix.from_edges([(0, 1), (1, 2)], 5)
        result = bfs(graph, 0, system, 4)
        assert result.values[3] == -1 and result.values[4] == -1
        assert result.values[2] == 2

    def test_isolated_source(self, system):
        graph = COOMatrix.from_edges([(1, 2)], 3)
        result = bfs(graph, 0, system, 2)
        assert result.values[0] == 0
        assert result.values[1] == -1

    def test_source_out_of_range(self, graph, system):
        with pytest.raises(ReproError):
            bfs(graph, 10_000, system, DPUS)

    def test_traces_recorded(self, graph, system):
        result = bfs(graph, 0, system, DPUS)
        assert result.num_iterations >= 1
        densities = [t.input_density for t in result.iterations]
        assert all(0 <= d <= 1 for d in densities)
        assert result.iterations[0].frontier_size == 1

    def test_energy_and_utilization(self, graph, system):
        result = bfs(graph, 0, system, DPUS)
        assert result.energy.total_j > 0
        assert result.utilization_kernel_pct > 0
        assert result.utilization_kernel_pct >= result.utilization_total_pct


class TestSssp:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed, system):
        graph = random_graph(n=120, avg_degree=4, seed=seed, weights="random")
        result = sssp(graph, 0, system, DPUS)
        assert np.allclose(result.values, sssp_reference(graph, 0))

    def test_matches_networkx(self, system):
        networkx = pytest.importorskip("networkx")
        graph = random_graph(n=80, avg_degree=5, seed=10, weights="random")
        result = sssp(graph, 0, system, DPUS)
        nx_graph = networkx.DiGraph()
        coo = graph.to_coo()
        nx_graph.add_nodes_from(range(80))
        for v, u, w in zip(coo.rows, coo.cols, coo.values):
            nx_graph.add_edge(int(u), int(v), weight=float(w))
        nx_dist = networkx.single_source_dijkstra_path_length(
            nx_graph, 0, weight="weight"
        )
        for node in range(80):
            expected = nx_dist.get(node, np.inf)
            assert result.values[node] == pytest.approx(expected)

    def test_unreachable_inf(self, system):
        graph = COOMatrix.from_edges([(0, 1)], 3, weights=[5])
        result = sssp(graph, 0, system, 2)
        assert result.values[1] == 5
        assert np.isinf(result.values[2])

    def test_rejects_negative_weights(self, system):
        graph = COOMatrix.from_edges([(0, 1)], 2, weights=[-1])
        with pytest.raises(ReproError):
            sssp(graph, 0, system, 2)

    def test_spmv_policy_agrees(self, weighted_graph, system):
        a = sssp(weighted_graph, 0, system, DPUS, policy=FixedPolicy("spmv"))
        b = sssp(weighted_graph, 0, system, DPUS, policy=FixedPolicy("spmspv"))
        assert np.allclose(a.values, b.values)


class TestPpr:
    def test_matches_reference(self, graph, system):
        result = ppr(graph, 0, system, DPUS)
        expected = ppr_reference(graph, 0)
        assert np.abs(result.values - expected).sum() < 1e-4

    def test_matches_networkx(self, system):
        networkx = pytest.importorskip("networkx")
        graph = random_graph(n=60, avg_degree=5, seed=21)
        result = ppr(graph, 3, system, DPUS, tol=1e-10, max_iters=500)
        nx_graph = networkx.DiGraph()
        coo = graph.to_coo()
        nx_graph.add_nodes_from(range(60))
        for v, u in zip(coo.rows, coo.cols):
            nx_graph.add_edge(int(u), int(v))
        nx_rank = networkx.pagerank(
            nx_graph, alpha=0.85, personalization={3: 1.0}, tol=1e-12,
            max_iter=500,
        )
        ours = result.values / result.values.sum()
        for node in range(60):
            assert ours[node] == pytest.approx(nx_rank[node], abs=2e-3)

    def test_rank_is_distribution(self, graph, system):
        result = ppr(graph, 0, system, DPUS)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(result.values >= 0)

    def test_source_has_high_rank(self, graph, system):
        result = ppr(graph, 0, system, DPUS)
        assert result.values[0] >= result.values.mean()

    def test_converges(self, graph, system):
        result = ppr(graph, 0, system, DPUS, tol=1e-6)
        assert result.converged

    def test_max_iters_cap(self, graph, system):
        result = ppr(graph, 0, system, DPUS, tol=0.0, max_iters=3)
        assert result.num_iterations == 3
        assert not result.converged

    def test_rejects_bad_alpha(self, graph, system):
        with pytest.raises(ReproError):
            ppr(graph, 0, system, DPUS, alpha=1.5)

    def test_pre_normalized_reuse(self, graph, system):
        norm = normalize_columns(graph)
        driver = MatvecDriver(norm, system, DPUS)
        a = ppr(norm, 0, system, DPUS, driver=driver, pre_normalized=True)
        b = ppr(graph, 0, system, DPUS)
        assert np.allclose(a.values, b.values, atol=1e-8)

    def test_dangling_mass_conserved(self, system):
        # node 2 has no out-edges: a dangling node
        graph = COOMatrix.from_edges([(0, 1), (1, 2)], 3)
        result = ppr(graph, 0, system, 2)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-6)


class TestNormalizeColumns:
    def test_column_stochastic(self, graph):
        norm = normalize_columns(graph)
        coo = norm.to_coo()
        sums = np.zeros(graph.ncols)
        np.add.at(sums, coo.cols, coo.values.astype(np.float64))
        nonzero = sums > 0
        assert np.allclose(sums[nonzero], 1.0, atol=1e-5)


class TestPolicyValidation:
    def test_fixed_policy_rejects_unknown(self):
        with pytest.raises(KernelError):
            FixedPolicy("gpu")

    def test_fixed_policy_describe(self):
        assert FixedPolicy("spmv").describe() == "spmv-only"


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100_000))
def test_property_bfs_levels_valid(seed):
    """BFS levels increase by exactly 1 along some in-edge."""
    rng = np.random.default_rng(seed)
    n = 40
    m = int(rng.integers(20, 120))
    edges = np.unique(rng.integers(0, n, (m, 2)), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if edges.size == 0:
        return
    graph = COOMatrix.from_edges(edges, n)
    system = SystemConfig(num_dpus=64)
    result = bfs(graph, 0, system, 8)
    levels = result.values
    assert levels[0] == 0
    csc = graph.to_csc()
    for v in range(n):
        if levels[v] > 0:
            # some predecessor must be exactly one level closer
            preds = [
                int(u) for u in range(n)
                if v in set(csc.column(u)[0].tolist())
            ]
            assert any(levels[u] == levels[v] - 1 for u in preds)
