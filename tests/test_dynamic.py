"""Differential churn-oracle suite for mutable resident graphs (PR 8).

Two oracles, both fully seeded:

* **Matrix identity** — after every churn batch, the overlay snapshot
  (and any compaction it triggered) must be ``tobytes()``-identical to a
  from-scratch canonical rebuild of the same effective edge set; 20
  seeds x 10 batches = 200 verified churn cases.
* **Incremental vs full** — after every batch, :func:`bfs_repair` and
  :func:`cc_repair` must be bit-identical to full recomputes on the
  post-batch snapshot, and :func:`delta_ppr` must agree within the
  documented contraction bound
  ``DELTA_PPR_TOL_FACTOR * tol * (1 - alpha) / alpha``.

Every assert carries the seed that reproduces it.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import random_graph

from repro.algorithms import bfs, connected_components, ppr
from repro.algorithms.ppr import DEFAULT_ALPHA, DEFAULT_TOL
from repro.cache import PLAN_CACHE, cached_plan
from repro.dynamic import (
    DELTA_PPR_TOL_FACTOR,
    EdgeBatch,
    MutableGraph,
    bfs_repair,
    cc_repair,
    delta_ppr,
    random_edge_batch,
)
from repro.errors import ReproError
from repro.partition import rowwise
from repro.sparse.coo import COOMatrix
from repro.upmem.config import SystemConfig

pytestmark = pytest.mark.dynamic

NUM_DPUS = 32
PPR_BOUND = DELTA_PPR_TOL_FACTOR * DEFAULT_TOL \
    * (1.0 - DEFAULT_ALPHA) / DEFAULT_ALPHA


@pytest.fixture(scope="module")
def system():
    return SystemConfig(num_dpus=64)


# ---------------------------------------------------------------------------
# oracle helpers
# ---------------------------------------------------------------------------


def oracle_edges(matrix: COOMatrix) -> dict:
    """``{(row, col): value}`` reference model of the stored matrix."""
    return {
        (int(r), int(c)): v
        for r, c, v in zip(matrix.rows, matrix.cols, matrix.values)
    }


def oracle_apply(edges: dict, batch: EdgeBatch, dtype) -> None:
    """Apply one batch to the dict model with MutableGraph semantics:
    inserts first (later insert wins), deletes second."""
    if batch.num_inserts:
        weights = (
            np.ones(batch.num_inserts, dtype=dtype)
            if batch.insert_weights is None
            else batch.insert_weights.astype(dtype)
        )
        for (u, v), w in zip(batch.inserts.tolist(), weights):
            edges[(int(v), int(u))] = w
    for u, v in batch.deletes.tolist():
        edges.pop((int(v), int(u)), None)


def oracle_matrix(edges: dict, shape, dtype) -> COOMatrix:
    """Canonical from-scratch rebuild of the dict model."""
    if not edges:
        empty = np.empty(0, dtype=np.int64)
        return COOMatrix.from_sorted(
            empty, empty, np.empty(0, dtype=dtype), shape
        )
    keys = sorted(edges)
    rows = np.array([k[0] for k in keys], dtype=np.int64)
    cols = np.array([k[1] for k in keys], dtype=np.int64)
    vals = np.array([edges[k] for k in keys], dtype=dtype)
    return COOMatrix.from_sorted(rows, cols, vals, shape)


def assert_matrices_identical(snap: COOMatrix, expected: COOMatrix, tag: str):
    assert snap.shape == expected.shape, tag
    assert snap.rows.tobytes() == expected.rows.tobytes(), tag
    assert snap.cols.tobytes() == expected.cols.tobytes(), tag
    assert snap.values.dtype == expected.values.dtype, tag
    assert snap.values.tobytes() == expected.values.tobytes(), tag


# ---------------------------------------------------------------------------
# matrix-identity churn oracle: 20 seeds x 10 batches = 200 cases
# ---------------------------------------------------------------------------


class TestChurnMatrixOracle:
    @pytest.mark.parametrize("seed", range(20))
    def test_overlay_matches_rebuild_across_batches(self, seed):
        """Every one of 10 batches leaves the snapshot tobytes-identical
        to a from-scratch rebuild (overlaid and compacted alike)."""
        base = random_graph(n=40, avg_degree=4.0, seed=100 + seed)
        mutable = MutableGraph(base, compact_threshold=0.3)
        edges = oracle_edges(base)
        rng = np.random.default_rng(seed)
        compactions = 0
        for step in range(10):
            batch = random_edge_batch(
                rng, 40, num_inserts=int(rng.integers(0, 12)),
                num_deletes=int(rng.integers(0, 8)),
                edge_pool=mutable.edge_array(),
            )
            report = mutable.apply(batch)
            compactions += int(report.compacted)
            oracle_apply(edges, batch, base.values.dtype)
            assert_matrices_identical(
                mutable.snapshot(),
                oracle_matrix(edges, base.shape, base.values.dtype),
                f"seed {seed} batch {step}",
            )
        # churn at this rate must have exercised the compaction path
        assert mutable.version == 10, f"seed {seed}"
        assert mutable.stats["compactions"] == compactions

    @pytest.mark.parametrize("seed", (3, 17))
    def test_explicit_compaction_is_identity(self, seed):
        base = random_graph(n=40, avg_degree=4.0, seed=seed)
        mutable = MutableGraph(base, compact_threshold=10.0)  # never auto
        edges = oracle_edges(base)
        rng = np.random.default_rng(seed)
        batch = random_edge_batch(rng, 40, edge_pool=mutable.edge_array())
        mutable.apply(batch)
        oracle_apply(edges, batch, base.values.dtype)
        mutable.compact()
        assert mutable.pending_deltas == 0, f"seed {seed}"
        assert_matrices_identical(
            mutable.snapshot(),
            oracle_matrix(edges, base.shape, base.values.dtype),
            f"seed {seed} post-compact",
        )


# ---------------------------------------------------------------------------
# overlay semantics (unit level)
# ---------------------------------------------------------------------------


class TestOverlaySemantics:
    def test_zero_pending_snapshot_is_base_object(self):
        base = random_graph(n=30, seed=1)
        mutable = MutableGraph(base)
        # identical object => identical fingerprint => warm caches
        assert mutable.snapshot() is base.to_coo()
        existing = mutable.edge_array()[:3]
        batch = EdgeBatch.of(
            inserts=existing,
            deletes=[] if mutable.has_edge(0, 0) else [(0, 0)],
        )
        report = mutable.apply(batch)
        # same-value re-inserts and absent-edge deletes are recognized as
        # no-ops: zero pending deltas, so the snapshot stays the base
        # object and every cache stays warm
        assert report.noop_inserts == 3 and report.noop_deletes == 1
        assert report.pending == 0
        assert mutable.snapshot() is base.to_coo()

    def test_upsert_then_delete_then_reinsert(self):
        base = COOMatrix.from_edges(np.array([[0, 1], [1, 2]]), 4)
        mutable = MutableGraph(base)
        edges = oracle_edges(base.to_coo())
        steps = (
            EdgeBatch.of(inserts=[(0, 1)]),            # upsert existing
            EdgeBatch.of(deletes=[(0, 1)]),            # delete base edge
            EdgeBatch.of(inserts=[(0, 1)]),            # re-insert after del
            EdgeBatch.of(inserts=[(2, 3)], deletes=[(2, 3)]),  # same batch
        )
        for i, batch in enumerate(steps):
            mutable.apply(batch)
            oracle_apply(edges, batch, base.values.dtype)
            assert_matrices_identical(
                mutable.snapshot(),
                oracle_matrix(edges, base.shape, base.values.dtype),
                f"step {i}",
            )
        assert mutable.has_edge(0, 1)
        assert not mutable.has_edge(2, 3)

    def test_out_of_range_endpoints_rejected(self):
        mutable = MutableGraph(random_graph(n=10, seed=0))
        with pytest.raises(ReproError):
            mutable.apply(EdgeBatch.of(inserts=[(0, 10)]))
        with pytest.raises(ReproError):
            mutable.apply(EdgeBatch.of(deletes=[(-1, 0)]))
        assert mutable.version == 0  # nothing applied

    def test_delta_layout_prices_target_rows(self):
        mutable = MutableGraph(random_graph(n=64, seed=0))
        batch = EdgeBatch.of(inserts=[(5, 0), (6, 0)], deletes=[(7, 63)])
        layout = mutable.delta_layout([batch], num_dpus=2)
        assert layout.tolist() == [32, 16]  # 16 bytes per delta element


# ---------------------------------------------------------------------------
# plan recycling across snapshots
# ---------------------------------------------------------------------------


class TestPlanRecycling:
    def test_snapshot_seeds_full_cache_hits(self, system):
        base = random_graph(n=60, avg_degree=4.0, seed=5)
        mutable = MutableGraph(base)
        # warm the cache on the pre-churn structure
        donor_snap = mutable.snapshot()
        donor = cached_plan(
            donor_snap, "rowwise", NUM_DPUS, "csc",
            lambda: rowwise(donor_snap, NUM_DPUS, fmt="csc"),
        )
        mutable.apply(EdgeBatch.of(inserts=[(0, 59), (59, 0)]))
        snap = mutable.snapshot()
        hits_before = PLAN_CACHE.stats.hits
        recycled = cached_plan(
            snap, "rowwise", NUM_DPUS, "csc",
            lambda: rowwise(snap, NUM_DPUS, fmt="csc"),
        )
        assert PLAN_CACHE.stats.hits == hits_before + 1, \
            "expected a full hit on the recycled plan"
        assert recycled.row_bounds.tolist() == donor.row_bounds.tolist()
        assert mutable.stats["plans_recycled"] >= 1


# ---------------------------------------------------------------------------
# incremental vs full differential grid
# ---------------------------------------------------------------------------


class TestIncrementalDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_repairs_match_full_recompute(self, seed, system):
        """Three sequential batches; after each, incremental BFS/CC are
        bit-identical to full recomputes and delta-PPR is within the
        contraction bound.  Previous answers compound (each repair feeds
        the next), which is the production access pattern."""
        n = 50
        base = random_graph(n=n, avg_degree=4.0, seed=200 + seed)
        mutable = MutableGraph(base)
        source = int(np.random.default_rng(seed).integers(n))
        prev_bfs = bfs(mutable.snapshot(), source, system, NUM_DPUS).values
        prev_cc = connected_components(
            mutable.snapshot(), system, NUM_DPUS
        ).values
        prev_ppr = ppr(mutable.snapshot(), source, system, NUM_DPUS).values
        rng = np.random.default_rng(seed)
        for step in range(3):
            batch = random_edge_batch(
                rng, n, num_inserts=6, num_deletes=4,
                edge_pool=mutable.edge_array(),
            )
            mutable.apply(batch)
            snap = mutable.snapshot()
            tag = f"seed {seed} batch {step}"

            repaired = bfs_repair(
                snap, source, system, NUM_DPUS,
                prev_levels=prev_bfs, batch=batch,
            )
            full = bfs(snap, source, system, NUM_DPUS)
            assert repaired.values.dtype == full.values.dtype, tag
            assert repaired.values.tobytes() == full.values.tobytes(), \
                f"bfs diverged: {tag}"
            prev_bfs = repaired.values

            relabeled = cc_repair(
                snap, system, NUM_DPUS, prev_labels=prev_cc, batch=batch,
            )
            full_cc = connected_components(snap, system, NUM_DPUS)
            assert relabeled.values.tobytes() == full_cc.values.tobytes(), \
                f"cc diverged: {tag}"
            prev_cc = relabeled.values

            reranked = delta_ppr(
                snap, source, system, NUM_DPUS, prev_rank=prev_ppr,
            )
            full_ppr = ppr(snap, source, system, NUM_DPUS)
            diff = float(np.abs(reranked.values - full_ppr.values).max())
            assert diff <= PPR_BOUND, \
                f"ppr drift {diff:.3e} > {PPR_BOUND:.3e}: {tag}"
            prev_ppr = reranked.values

    def test_insert_only_cc_repair_needs_no_matvecs(self, system):
        base = random_graph(n=50, avg_degree=3.0, seed=9)
        mutable = MutableGraph(base)
        prev = connected_components(mutable.snapshot(), system, NUM_DPUS)
        batch = EdgeBatch.of(inserts=[(0, 25), (25, 49)])
        mutable.apply(batch)
        run = cc_repair(
            mutable.snapshot(), system, NUM_DPUS,
            prev_labels=prev.values, batch=batch,
        )
        assert run.num_iterations == 0
        full = connected_components(mutable.snapshot(), system, NUM_DPUS)
        assert run.values.tobytes() == full.values.tobytes()

    def test_bfs_repair_reports_repair_stats(self, system):
        base = random_graph(n=50, avg_degree=4.0, seed=4)
        mutable = MutableGraph(base)
        prev = bfs(mutable.snapshot(), 0, system, NUM_DPUS)
        batch = random_edge_batch(
            np.random.default_rng(4), 50, num_inserts=4, num_deletes=6,
            edge_pool=mutable.edge_array(),
        )
        mutable.apply(batch)
        run = bfs_repair(
            mutable.snapshot(), 0, system, NUM_DPUS,
            prev_levels=prev.values, batch=batch,
        )
        stats = run.repair_stats
        assert set(stats) == {
            "invalidated", "cascade_pushes", "seed_frontier"
        }
        assert all(v >= 0 for v in stats.values())

    def test_repair_rejects_bad_inputs(self, system):
        base = random_graph(n=20, seed=0)
        mutable = MutableGraph(base)
        batch = EdgeBatch.of(inserts=[(0, 1)])
        with pytest.raises(ReproError):
            bfs_repair(mutable.snapshot(), 99, system, NUM_DPUS,
                       prev_levels=np.zeros(20, dtype=np.int64), batch=batch)
        with pytest.raises(ReproError):
            cc_repair(mutable.snapshot(), system, NUM_DPUS,
                      prev_labels=np.zeros(3, dtype=np.int64), batch=batch)
        with pytest.raises(ReproError):
            delta_ppr(mutable.snapshot(), 0, system, NUM_DPUS,
                      prev_rank=np.zeros(5))
