"""Tests for the empirical SpMSpV variant selector."""

import numpy as np
import pytest

from repro.adaptive import (
    VariantSelection,
    probe_variants,
    rule_of_thumb_variant,
    select_best_variant,
)
from repro.datasets import degree_targeted, road_network
from repro.errors import KernelError
from repro.kernels import FIG5_VARIANTS
from repro.upmem import SystemConfig
from conftest import random_graph


@pytest.fixture
def system():
    return SystemConfig(num_dpus=64)


class TestProbe:
    def test_times_every_variant(self, system):
        matrix = random_graph(n=400, avg_degree=6, seed=2)
        selection = probe_variants(matrix, system, 32, density=0.2)
        assert set(selection.timings_s) == set(FIG5_VARIANTS)
        assert all(t > 0 for t in selection.timings_s.values())

    def test_best_is_minimum(self):
        selection = VariantSelection(
            density=0.1,
            timings_s={"a": 2.0, "b": 1.0, "c": 3.0},
        )
        assert selection.best == "b"
        assert selection.spread == pytest.approx(3.0)

    def test_csc_2d_wins_at_high_density(self, system):
        matrix = random_graph(n=2000, avg_degree=8, seed=4)
        best = select_best_variant(matrix, system, 64, density=0.5)
        assert best == "spmspv-csc-2d"

    def test_rejects_no_variants(self, system):
        matrix = random_graph(n=100, seed=5)
        with pytest.raises(KernelError):
            probe_variants(matrix, system, 8, density=0.1, variants=())


class TestRuleOfThumb:
    def test_high_density_always_csc2d(self):
        matrix = random_graph(n=200, seed=6)
        assert rule_of_thumb_variant(matrix, 0.5) == "spmspv-csc-2d"
        assert rule_of_thumb_variant(matrix, 0.10) == "spmspv-csc-2d"

    def test_uniform_low_degree_prefers_cscc(self):
        # the paper's 'r-PA' case: small uniform degrees
        roads = road_network(5000, rng=np.random.default_rng(7))
        assert rule_of_thumb_variant(roads, 0.01) == "spmspv-csc-c"

    def test_skewed_prefers_cscr(self):
        social = degree_targeted(3000, 12.0, 41.0,
                                 rng=np.random.default_rng(8))
        assert rule_of_thumb_variant(social, 0.01) == "spmspv-csc-r"
