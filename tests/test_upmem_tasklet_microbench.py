"""Tests for tasklet program generation and the DPU microbenchmarks."""

import numpy as np
import pytest

from repro.errors import UpmemError
from repro.types import DataType
from repro.upmem import (
    DpuConfig,
    InstrClass,
    RevolverPipeline,
    TaskletProgram,
    arithmetic_throughput,
    coo_spmv_program,
    csc_spmspv_program,
    dma_cost_curve,
    format_microbench_report,
    host_transfer_curve,
    split_columns_among_tasklets,
    tasklet_scaling,
)
from repro.upmem.pipeline import MUTEX_UNLOCK


class TestTaskletProgram:
    def test_emit_and_len(self):
        program = TaskletProgram()
        program.emit(InstrClass.ARITH)
        program.emit(InstrClass.LOADSTORE)
        assert len(program) == 2

    def test_rf_pairs_periodic(self):
        program = TaskletProgram(rf_pair_period=3)
        for _ in range(9):
            program.emit(InstrClass.ARITH)
        paired = sum(1 for i in program.instructions if i.rf_pair)
        assert paired == 3

    def test_dma_read_emits_setup(self):
        program = TaskletProgram()
        program.dma_read(512)
        kinds = [i.klass for i in program.instructions]
        assert kinds == [InstrClass.CONTROL, InstrClass.DMA]
        assert program.instructions[1].dma_bytes == 512

    def test_lock_unlock(self):
        program = TaskletProgram()
        program.lock(3)
        program.unlock()
        assert program.instructions[0].mutex_id == 3
        assert program.instructions[1].mutex_id == MUTEX_UNLOCK

    def test_semiring_ops_by_dtype(self):
        program = TaskletProgram()
        program.semiring_multiply(DataType.FLOAT32)
        program.semiring_add(DataType.INT32)
        assert program.instructions[0].klass is InstrClass.FMUL
        assert program.instructions[1].klass is InstrClass.ARITH


class TestKernelPrograms:
    def test_csc_program_structure(self):
        stream = csc_spmspv_program([3, 2], rng=np.random.default_rng(0))
        kinds = [i.klass for i in stream]
        # entry + exit barriers
        assert kinds.count(InstrClass.SYNC) >= 2 + 2 * 5  # barriers + locks
        # one multiply per matched element
        assert kinds.count(InstrClass.MUL32) == 5
        # per-column pointer fetch + per-chunk data DMA
        assert kinds.count(InstrClass.DMA) >= 4

    def test_csc_program_runs(self):
        streams = [
            csc_spmspv_program([4, 4, 4], rng=np.random.default_rng(t))
            for t in range(6)
        ]
        stats = RevolverPipeline(DpuConfig()).run(streams)
        assert stats.instructions_issued == sum(len(s) for s in streams)
        assert stats.idle_memory > 0  # blocking column DMAs

    def test_csc_rejects_negative_lengths(self):
        with pytest.raises(UpmemError):
            csc_spmspv_program([-1])

    def test_coo_program_structure(self):
        stream = coo_spmv_program(10, x_miss_rate=1.0,
                                  rng=np.random.default_rng(1))
        kinds = [i.klass for i in stream]
        assert kinds.count(InstrClass.MUL32) == 10
        # every element gathers x via an 8-byte DMA at miss rate 1
        gathers = sum(
            1 for i in stream
            if i.klass is InstrClass.DMA and i.dma_bytes == 8
        )
        assert gathers == 10

    def test_coo_miss_rate_zero(self):
        stream = coo_spmv_program(10, x_miss_rate=0.0)
        gathers = sum(
            1 for i in stream
            if i.klass is InstrClass.DMA and i.dma_bytes == 8
        )
        assert gathers == 0

    def test_coo_rejects_bad_args(self):
        with pytest.raises(UpmemError):
            coo_spmv_program(-1)
        with pytest.raises(UpmemError):
            coo_spmv_program(5, x_miss_rate=1.5)

    def test_column_split_balanced(self):
        lengths = [10, 1, 1, 1, 9, 1, 1, 8]
        shares = split_columns_among_tasklets(lengths, 4)
        totals = [sum(s) for s in shares]
        assert sum(totals) == sum(lengths)
        assert max(totals) - min(totals) <= 10

    def test_column_split_rejects_zero_tasklets(self):
        with pytest.raises(UpmemError):
            split_columns_among_tasklets([1], 0)


class TestMicrobench:
    def test_arithmetic_ordering(self):
        """int add > int mul > float add > float mul throughput."""
        points = arithmetic_throughput(num_tasklets=12, ops_per_tasklet=40)
        assert (
            points["int32_add"].ops_per_cycle
            > points["int32_mul"].ops_per_cycle
            > points["float_add"].ops_per_cycle
            > points["float_mul"].ops_per_cycle
        )

    def test_int_add_saturates_pipeline(self):
        points = arithmetic_throughput(num_tasklets=12, ops_per_tasklet=40)
        assert points["int32_add"].ops_per_cycle == pytest.approx(1.0,
                                                                  abs=0.05)

    def test_tasklet_scaling_saturates_at_gap(self):
        ipc = tasklet_scaling(ops_per_tasklet=100,
                              tasklet_counts=(1, 4, 11, 24))
        assert ipc[1] == pytest.approx(1 / 11, abs=0.02)
        assert ipc[4] < ipc[11]
        assert ipc[11] == pytest.approx(1.0, abs=0.02)
        assert ipc[24] == pytest.approx(1.0, abs=0.02)

    def test_dma_curve_monotone(self):
        curve = dma_cost_curve()
        values = list(curve.values())
        assert values == sorted(values)
        # asymptote is 1/cycles_per_byte = 2 bytes/cycle
        assert values[-1] == pytest.approx(1.86, abs=0.1)

    def test_host_bandwidth_scales_then_saturates(self):
        curve = host_transfer_curve(dpu_counts=(64, 512, 2560),
                                    bytes_per_dpu=1 << 18)
        assert curve[64] < curve[512] < curve[2560]
        assert curve[2560] <= 6.7e9 * 1.01

    def test_report_renders(self):
        report = format_microbench_report(
            arithmetic_throughput(num_tasklets=4, ops_per_tasklet=10),
            tasklet_scaling(ops_per_tasklet=20, tasklet_counts=(1, 11)),
            dma_cost_curve(sizes=(8, 2048)),
            host_transfer_curve(dpu_counts=(64,), bytes_per_dpu=1 << 16),
        )
        assert "arithmetic throughput" in report
        assert "IPC" in report
