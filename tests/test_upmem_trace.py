"""Tests for pipeline execution tracing."""

import numpy as np
import pytest

from repro.errors import UpmemError
from repro.upmem import (
    DispatchEvent,
    DpuConfig,
    ExecutionTrace,
    Instruction,
    InstrClass,
    RevolverPipeline,
    TracingPipeline,
    csc_spmspv_program,
)

ARITH = Instruction(InstrClass.ARITH)


class TestTracingPipeline:
    def test_records_every_dispatch(self):
        streams = [[ARITH] * 5 for _ in range(3)]
        trace = TracingPipeline().run_traced(streams)
        assert len(trace.events) == 15
        assert trace.num_tasklets == 3
        assert trace.total_cycles > 0

    def test_stats_match_untraced_run(self):
        streams = [
            csc_spmspv_program([2, 3], rng=np.random.default_rng(t))
            for t in range(4)
        ]
        tracer = TracingPipeline(DpuConfig())
        trace = tracer.run_traced(streams)
        plain = RevolverPipeline(DpuConfig()).run(streams)
        assert tracer.last_stats.cycles == plain.cycles
        assert len(trace.events) == plain.instructions_issued

    def test_events_for_tasklet(self):
        streams = [[ARITH] * 3, [ARITH] * 7]
        trace = TracingPipeline().run_traced(streams)
        assert len(trace.events_for(0)) == 3
        assert len(trace.events_for(1)) == 7

    def test_events_are_time_ordered(self):
        streams = [[ARITH] * 10 for _ in range(4)]
        trace = TracingPipeline().run_traced(streams)
        cycles = [e.cycle for e in trace.events]
        assert cycles == sorted(cycles)

    def test_no_two_dispatches_same_cycle(self):
        """The single dispatch port admits one instruction per cycle."""
        streams = [[ARITH] * 20 for _ in range(12)]
        trace = TracingPipeline().run_traced(streams)
        cycles = [e.cycle for e in trace.events]
        assert len(cycles) == len(set(cycles))

    def test_utilization(self):
        streams = [[ARITH] * 30 for _ in range(12)]
        trace = TracingPipeline().run_traced(streams)
        assert trace.utilization() > 0.9

    def test_hook_on_plain_pipeline(self):
        seen = []
        RevolverPipeline().run(
            [[ARITH] * 4],
            on_dispatch=lambda c, t, i: seen.append((c, t, i.klass)),
        )
        assert len(seen) == 4
        assert all(t == 0 for _, t, _ in seen)


class TestTimeline:
    def test_renders_rows_per_tasklet(self):
        streams = [[ARITH] * 4 for _ in range(3)]
        trace = TracingPipeline().run_traced(streams)
        timeline = trace.timeline(width=20)
        assert "t00 |" in timeline and "t02 |" in timeline
        assert "a=arith" in timeline

    def test_dma_glyph_present(self):
        stream = [Instruction(InstrClass.DMA, dma_bytes=512), ARITH]
        trace = TracingPipeline().run_traced([stream])
        assert "D" in trace.timeline(width=40)

    def test_empty_trace(self):
        assert ExecutionTrace().timeline() == "(empty trace)"

    def test_rejects_bad_width(self):
        trace = ExecutionTrace(
            events=[DispatchEvent(0, 0, InstrClass.ARITH)],
            total_cycles=5,
            num_tasklets=1,
        )
        with pytest.raises(UpmemError):
            trace.timeline(width=0)


class TestWramValidation:
    def test_kernel_rejects_tiny_wram(self):
        """A DPU with no usable scratchpad cannot host the kernels."""
        from repro.kernels import prepare_kernel
        from repro.upmem import SystemConfig
        from repro.errors import WramOverflowError
        from conftest import random_graph

        tiny_wram = DpuConfig(wram_bytes=1024)
        system = SystemConfig(num_dpus=64, dpu=tiny_wram)
        with pytest.raises(WramOverflowError):
            prepare_kernel(
                "spmspv-csc-2d", random_graph(n=100, seed=1), 8, system
            )
