"""Tests for the shared value types."""

import numpy as np
import pytest

from repro.types import (
    DataType,
    EnergyReport,
    GraphClass,
    GraphFeatures,
    IterationTrace,
    PhaseBreakdown,
    RunResult,
    UtilizationReport,
)


class TestDataType:
    def test_nbytes(self):
        assert DataType.INT32.nbytes == 4
        assert DataType.INT64.nbytes == 8
        assert DataType.FLOAT32.nbytes == 4
        assert DataType.FLOAT64.nbytes == 8

    def test_is_float(self):
        assert DataType.FLOAT32.is_float
        assert DataType.FLOAT64.is_float
        assert not DataType.INT32.is_float
        assert not DataType.INT64.is_float

    def test_value_matches_numpy_dtype(self):
        for dt in DataType:
            assert np.dtype(dt.value).itemsize == dt.nbytes


class TestPhaseBreakdown:
    def test_total(self):
        b = PhaseBreakdown(load=1.0, kernel=2.0, retrieve=3.0, merge=4.0)
        assert b.total == 10.0

    def test_default_is_zero(self):
        assert PhaseBreakdown().total == 0.0

    def test_add(self):
        a = PhaseBreakdown(1, 2, 3, 4)
        b = PhaseBreakdown(10, 20, 30, 40)
        c = a + b
        assert c.load == 11 and c.kernel == 22
        assert c.retrieve == 33 and c.merge == 44
        # operands unchanged
        assert a.load == 1 and b.load == 10

    def test_iadd(self):
        a = PhaseBreakdown(1, 1, 1, 1)
        a += PhaseBreakdown(1, 2, 3, 4)
        assert a.total == 14

    def test_scaled(self):
        b = PhaseBreakdown(2, 4, 6, 8).scaled(0.5)
        assert b.load == 1 and b.merge == 4

    def test_normalized_to(self):
        b = PhaseBreakdown(1, 1, 1, 1).normalized_to(4.0)
        assert b.total == pytest.approx(1.0)

    def test_normalized_to_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PhaseBreakdown(1, 1, 1, 1).normalized_to(0.0)

    def test_as_dict(self):
        d = PhaseBreakdown(1, 2, 3, 4).as_dict()
        assert d == {
            "load": 1, "kernel": 2, "retrieve": 3, "merge": 4, "total": 10,
        }

    def test_iter_order(self):
        assert list(PhaseBreakdown(1, 2, 3, 4)) == [1, 2, 3, 4]


class TestGraphClass:
    def test_switch_densities_match_paper(self):
        assert GraphClass.REGULAR.default_switch_density == pytest.approx(0.20)
        assert GraphClass.SCALE_FREE.default_switch_density == pytest.approx(0.50)


class TestGraphFeatures:
    def test_mapping(self):
        f = GraphFeatures(average_degree=3.5, degree_std=1.2)
        m = f.as_mapping()
        assert m["average_degree"] == 3.5
        assert m["degree_std"] == 1.2

    def test_frozen(self):
        f = GraphFeatures(1.0, 2.0)
        with pytest.raises(AttributeError):
            f.average_degree = 5.0


class TestEnergyReport:
    def test_total(self):
        e = EnergyReport(static_j=1.0, dynamic_j=2.0, transfer_j=3.0)
        assert e.total_j == 6.0

    def test_add(self):
        e = EnergyReport(1, 2, 3) + EnergyReport(1, 1, 1)
        assert e.total_j == 9.0
        assert e.static_j == 2.0


class TestUtilizationReport:
    def test_percent(self):
        u = UtilizationReport(achieved_ops=50.0, elapsed_s=1.0,
                              peak_ops_per_s=100.0)
        assert u.percent == pytest.approx(50.0)

    def test_zero_elapsed(self):
        u = UtilizationReport(10.0, 0.0, 100.0)
        assert u.achieved_ops_per_s == 0.0
        assert u.percent == 0.0

    def test_zero_peak(self):
        u = UtilizationReport(10.0, 1.0, 0.0)
        assert u.percent == 0.0


class TestRunResult:
    def test_add_iteration_accumulates(self):
        run = RunResult(algorithm="bfs", dataset="x")
        run.add_iteration(
            IterationTrace(0, "spmspv", 0.1, PhaseBreakdown(1, 1, 1, 1))
        )
        run.add_iteration(
            IterationTrace(1, "spmv", 0.6, PhaseBreakdown(2, 2, 2, 2))
        )
        assert run.num_iterations == 2
        assert run.total_s == 12.0
        assert run.kernel_s == 3.0

    def test_iteration_trace_total(self):
        t = IterationTrace(0, "spmv", 0.5, PhaseBreakdown(1, 2, 3, 4))
        assert t.total_s == 10.0
