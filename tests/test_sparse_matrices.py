"""Tests for COO / CSR / CSC matrices and their conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SparseFormatError
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix


def sample_dense(seed=0, n=40, density=0.1, dtype=np.float64):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.random((n, n))
    return dense.astype(dtype)


class TestCOOConstruction:
    def test_sorted_row_major(self):
        m = COOMatrix([1, 0, 1], [0, 1, 2], [1, 2, 3], (2, 3))
        assert list(m.rows) == [0, 1, 1]
        assert list(m.cols) == [1, 0, 2]

    def test_rejects_duplicates(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([0, 0], [1, 1], [1, 2], (2, 2))

    def test_rejects_out_of_range(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([2], [0], [1], (2, 2))
        with pytest.raises(SparseFormatError):
            COOMatrix([0], [2], [1], (2, 2))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([0], [0, 1], [1], (2, 2))

    def test_empty(self):
        m = COOMatrix.empty(5)
        assert m.nnz == 0
        assert m.shape == (5, 5)
        assert m.sparsity == 0.0

    def test_from_dense_roundtrip(self):
        dense = sample_dense()
        m = COOMatrix.from_dense(dense)
        assert np.array_equal(m.to_dense(), dense)


class TestFromEdges:
    def test_pretransposed_orientation(self):
        # edge u->v stored as A[v, u]
        m = COOMatrix.from_edges([(0, 1)], 2)
        dense = m.to_dense()
        assert dense[1, 0] == 1
        assert dense[0, 1] == 0

    def test_deduplicates(self):
        m = COOMatrix.from_edges([(0, 1), (0, 1), (1, 0)], 2)
        assert m.nnz == 2

    def test_weights(self):
        m = COOMatrix.from_edges([(0, 1), (1, 2)], 3, weights=[5, 7])
        dense = m.to_dense()
        assert dense[1, 0] == 5 and dense[2, 1] == 7

    def test_weights_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            COOMatrix.from_edges([(0, 1)], 2, weights=[1, 2])

    def test_empty_edges(self):
        m = COOMatrix.from_edges([], 3)
        assert m.nnz == 0 and m.shape == (3, 3)


class TestConversions:
    @pytest.mark.parametrize("seed", range(5))
    def test_coo_csr_csc_consistent(self, seed):
        dense = sample_dense(seed)
        coo = COOMatrix.from_dense(dense)
        assert np.array_equal(coo.to_csr().to_dense(), dense)
        assert np.array_equal(coo.to_csc().to_dense(), dense)
        assert np.array_equal(coo.to_csr().to_csc().to_dense(), dense)
        assert np.array_equal(coo.to_csc().to_csr().to_dense(), dense)

    def test_identity_conversions(self):
        coo = COOMatrix.from_dense(sample_dense())
        assert coo.to_coo() is coo
        csr = coo.to_csr()
        assert csr.to_csr() is csr
        csc = coo.to_csc()
        assert csc.to_csc() is csc

    def test_nnz_preserved(self):
        coo = COOMatrix.from_dense(sample_dense(3))
        assert coo.to_csr().nnz == coo.nnz
        assert coo.to_csc().nnz == coo.nnz


class TestCSRValidation:
    def test_bad_row_ptr_length(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 1], [0], [1.0], (2, 2))

    def test_row_ptr_must_start_at_zero(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([1, 1, 1], [0], [1.0], (2, 2))

    def test_row_ptr_monotone(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))

    def test_row_ptr_final_nnz(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 1, 3], [0, 1], [1.0, 2.0], (2, 2))

    def test_col_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 1, 1], [5], [1.0], (2, 2))

    def test_row_access(self):
        dense = sample_dense(2)
        csr = COOMatrix.from_dense(dense).to_csr()
        for i in range(dense.shape[0]):
            cols, vals = csr.row(i)
            expected = np.nonzero(dense[i])[0]
            assert np.array_equal(cols, expected)
            assert np.array_equal(vals, dense[i, expected])

    def test_row_lengths(self):
        dense = sample_dense(2)
        csr = COOMatrix.from_dense(dense).to_csr()
        assert np.array_equal(csr.row_lengths(), (dense != 0).sum(axis=1))


class TestCSCValidation:
    def test_bad_col_ptr_length(self):
        with pytest.raises(SparseFormatError):
            CSCMatrix([0, 1], [0], [1.0], (2, 2))

    def test_col_ptr_monotone(self):
        with pytest.raises(SparseFormatError):
            CSCMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))

    def test_row_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CSCMatrix([0, 1, 1], [5], [1.0], (2, 2))

    def test_column_access(self):
        dense = sample_dense(4)
        csc = COOMatrix.from_dense(dense).to_csc()
        for j in range(dense.shape[1]):
            rows, vals = csc.column(j)
            expected = np.nonzero(dense[:, j])[0]
            assert np.array_equal(rows, expected)
            assert np.array_equal(vals, dense[expected, j])

    def test_active_slices(self):
        dense = sample_dense(4)
        csc = COOMatrix.from_dense(dense).to_csc()
        active = np.array([0, 3, 7])
        starts, stops = csc.active_slices(active)
        assert np.array_equal(stops - starts, (dense[:, active] != 0).sum(axis=0))

    def test_column_lengths(self):
        dense = sample_dense(5)
        csc = COOMatrix.from_dense(dense).to_csc()
        assert np.array_equal(csc.column_lengths(), (dense != 0).sum(axis=0))


class TestBlocks:
    def test_row_block(self):
        dense = sample_dense(6, n=20)
        coo = COOMatrix.from_dense(dense)
        block = coo.row_block(5, 12)
        assert block.shape == (7, 20)
        assert np.array_equal(block.to_dense(), dense[5:12])

    def test_col_block(self):
        dense = sample_dense(6, n=20)
        coo = COOMatrix.from_dense(dense)
        block = coo.col_block(3, 9)
        assert np.array_equal(block.to_dense(), dense[:, 3:9])

    def test_tile(self):
        dense = sample_dense(6, n=20)
        coo = COOMatrix.from_dense(dense)
        tile = coo.tile(2, 10, 5, 15)
        assert np.array_equal(tile.to_dense(), dense[2:10, 5:15])

    def test_nnz_chunk_keeps_global_rows(self):
        coo = COOMatrix.from_dense(sample_dense(7, n=20))
        chunk = coo.nnz_chunk(3, 9)
        assert chunk.nnz == 6
        assert chunk.shape == coo.shape

    def test_nnz_chunk_bounds(self):
        coo = COOMatrix.from_dense(sample_dense(7))
        with pytest.raises(SparseFormatError):
            coo.nnz_chunk(5, coo.nnz + 1)

    def test_transpose(self):
        dense = sample_dense(8, n=15)
        coo = COOMatrix.from_dense(dense)
        assert np.array_equal(coo.transpose().to_dense(), dense.T)

    def test_counts(self):
        dense = sample_dense(9, n=15)
        coo = COOMatrix.from_dense(dense)
        assert np.array_equal(coo.row_counts(), (dense != 0).sum(axis=1))
        assert np.array_equal(coo.col_counts(), (dense != 0).sum(axis=0))


class TestBytes:
    def test_nbytes_positive(self):
        coo = COOMatrix.from_dense(sample_dense(1, dtype=np.float32))
        assert coo.nbytes == coo.nnz * 12
        assert coo.to_csr().nbytes > 0
        assert coo.to_csc().nbytes > 0

    def test_sparsity(self):
        m = COOMatrix([0], [0], [1], (10, 10))
        assert m.sparsity == pytest.approx(0.01)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14), st.floats(0.5, 9.5)),
        max_size=60,
        unique_by=lambda t: (t[0], t[1]),
    )
)
def test_property_format_roundtrips(entries):
    """COO -> CSR -> COO and COO -> CSC -> COO preserve the matrix."""
    rows = [r for r, _, _ in entries]
    cols = [c for _, c, _ in entries]
    vals = [v for _, _, v in entries]
    coo = COOMatrix(rows, cols, vals, (15, 15))
    dense = coo.to_dense()
    assert np.array_equal(coo.to_csr().to_coo().to_dense(), dense)
    assert np.array_equal(coo.to_csc().to_coo().to_dense(), dense)


class TestTrustedConstruction:
    """`from_sorted` / `validate=False` must equal the validating paths."""

    def test_from_sorted_equals_public_constructor(self):
        dense = sample_dense(7, density=0.2)
        checked = COOMatrix.from_dense(dense)
        trusted = COOMatrix.from_sorted(
            checked.rows, checked.cols, checked.values, checked.shape
        )
        assert np.array_equal(trusted.rows, checked.rows)
        assert np.array_equal(trusted.cols, checked.cols)
        assert np.array_equal(trusted.values, checked.values)
        assert trusted.shape == checked.shape
        assert np.array_equal(trusted.to_dense(), dense)

    def test_from_sorted_coerces_non_ndarray_input(self):
        m = COOMatrix.from_sorted([0, 1], [1, 0], [1.0, 2.0], (2, 2))
        assert m.rows.dtype == np.int64
        assert m.cols.dtype == np.int64
        assert m.nnz == 2

    def test_to_csc_matches_validated_construction(self):
        coo = COOMatrix.from_dense(sample_dense(3, density=0.15))
        fast = coo.to_csc()
        # rebuild through the fully validating CSC constructor
        checked = CSCMatrix(
            fast.col_ptr.copy(), fast.row_indices.copy(),
            fast.values.copy(), fast.shape,
        )
        assert np.array_equal(checked.to_dense(), coo.to_dense())
        # rows ascend within every column (the canonical CSC invariant)
        for j in range(fast.ncols):
            seg = fast.row_indices[fast.col_ptr[j]:fast.col_ptr[j + 1]]
            assert np.all(np.diff(seg) > 0)

    def test_to_csr_matches_validated_construction(self):
        coo = COOMatrix.from_dense(sample_dense(4, density=0.15))
        fast = coo.to_csr()
        checked = CSRMatrix(
            fast.row_ptr.copy(), fast.col_indices.copy(),
            fast.values.copy(), fast.shape,
        )
        assert np.array_equal(checked.to_dense(), coo.to_dense())

    def test_conversions_are_memoized(self):
        coo = COOMatrix.from_dense(sample_dense(5, density=0.1))
        assert coo.to_csr() is coo.to_csr()
        assert coo.to_csc() is coo.to_csc()

    def test_validate_false_skips_checks(self):
        # deliberately broken pointers slip through when validate=False...
        bad_ptr = np.array([0, 5, 2], dtype=np.int64)
        CSRMatrix(bad_ptr, np.array([0, 1]), np.array([1.0, 2.0]), (2, 2),
                  validate=False)
        # ...and are still rejected by the default validating path
        with pytest.raises(SparseFormatError):
            CSRMatrix(bad_ptr, np.array([0, 1]), np.array([1.0, 2.0]), (2, 2))
