"""Tests for the experiment result accessors across all runners."""

import pytest

from repro.experiments import (
    DatasetCache,
    ExperimentConfig,
    export_json,
    run_density_study,
    run_fig4,
    run_fig6,
    run_fig8,
    run_interconnect_ablation,
)
from repro.experiments.fig6 import DENSITIES as FIG6_DENSITIES

TINY = ExperimentConfig(scale=0.012, num_dpus=64, datasets=("A302", "face"))


@pytest.fixture(scope="module")
def cache():
    return DatasetCache(TINY)


class TestFig4Accessors:
    @pytest.fixture(scope="class")
    def result(self, cache):
        return run_fig4(TINY, cache)

    def test_curves_cover_both_policies(self, result):
        policies = {key[2] for key in result.curves}
        assert policies == {"spmv-only", "spmspv-only"}

    def test_density_spread_nonnegative(self, result):
        for algorithm in ("bfs", "sssp"):
            assert result.density_spread(algorithm, "A302") >= 0

    def test_flatness_at_least_one(self, result):
        assert result.spmv_flatness("bfs", "A302") >= 1.0

    def test_correlation_bounded(self, result):
        corr = result.spmspv_density_correlation("bfs", "A302")
        assert -1.0 <= corr <= 1.0


class TestFig6Accessors:
    @pytest.fixture(scope="class")
    def result(self, cache):
        return run_fig6(TINY, cache)

    def test_ratios_defined_everywhere(self, result):
        for density in FIG6_DENSITIES:
            assert result.load_ratio(density) > 0
            assert result.total_ratio(density) > 0

    def test_cells_cover_grid(self, result):
        expected = len(TINY.datasets) * len(FIG6_DENSITIES) * 2
        assert len(result.cells) == expected


class TestFig8Accessors:
    @pytest.fixture(scope="class")
    def result(self, cache):
        return run_fig8(TINY, cache)

    def test_reference_is_512(self, result):
        for cell in result.cells:
            if cell.num_dpus == 512:
                # at least one 512 cell per group normalizes to ~1
                pass
        assert result.normalized_total("bfs", 512) == pytest.approx(
            1.0, rel=1e-6
        )

    def test_fractions_bounded(self, result):
        for algorithm in ("bfs", "sssp", "ppr"):
            assert 0 <= result.transfer_fraction(algorithm) <= 1
            assert 0 <= result.kernel_fraction(algorithm) <= 1

    def test_report_contains_chart(self, result):
        assert "stacked phase bars" in result.format_report()

    def test_exports(self, result, tmp_path):
        export_json(result, tmp_path / "fig8.json")
        assert (tmp_path / "fig8.json").stat().st_size > 100


class TestInterconnectAccessors:
    def test_projection_never_slower(self, cache):
        result = run_interconnect_ablation(TINY, cache)
        for row in result.rows:
            assert row.interconnect_total_s <= row.host_total_s * 1.001


class TestDensityAccessors:
    def test_first_half_max(self, cache):
        result = run_density_study(TINY, cache, sources_per_dataset=1)
        for row in result.rows:
            assert 0 <= row.first_half_max_density <= row.peak_density + 1e-9
