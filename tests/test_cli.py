"""Tests for the top-level ``python -m repro`` command line."""

import json

import pytest

from repro.cli import ALGORITHMS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bfs"])
        assert args.algorithm == "bfs"
        assert args.dataset == "A302"
        assert args.policy == "adaptive"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dijkstra"])

    def test_all_algorithms_listed(self):
        assert set(ALGORITHMS) == {"bfs", "sssp", "ppr", "pagerank", "cc"}


class TestMain:
    COMMON = ["--dataset", "face", "--scale", "0.05", "--dpus", "64"]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_runs(self, algorithm, capsys):
        assert main([algorithm, *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "answer:" in out
        assert "per-iteration phases:" in out

    @pytest.mark.parametrize("policy", ["adaptive", "spmv", "spmspv"])
    def test_policies(self, policy, capsys):
        assert main(["bfs", *self.COMMON, "--policy", policy]) == 0
        out = capsys.readouterr().out
        assert "policy=" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "run.json"
        assert main(["bfs", *self.COMMON, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["algorithm"] == "bfs"
        assert payload["converged"] in (True, False)
        assert payload["breakdown"]["total"] > 0
        assert isinstance(payload["values"], list)

    def test_source_wraps_modulo(self, capsys):
        # a source beyond the scaled node count must not crash
        assert main(["bfs", *self.COMMON, "--source", "999999"]) == 0

    def test_unknown_dataset_fails(self):
        with pytest.raises(Exception):
            main(["bfs", "--dataset", "nope", "--scale", "0.05"])


@pytest.mark.serving
class TestServingCommands:
    """``serve`` / ``load`` route through the serving subparser."""

    COMMON = ["--dataset", "face", "--scale", "0.02", "--dpus", "128",
              "--tenants", "2", "--queries", "3"]

    def test_serve_prints_per_query_outcomes(self, capsys):
        assert main(["serve", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "SERVE" in out
        assert "completed" in out
        assert "accounted: True" in out

    def test_load_closed_loop_report(self, capsys):
        assert main(["load", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "report[closed]" in out
        assert "latency p50=" in out

    def test_load_open_loop_json(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main([
            "load", *self.COMMON, "--mode", "open",
            "--rate", "2000", "--json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["mode"] == "open"
        assert payload["accounted"] is True
        assert payload["submitted"] == 3  # open loop: total arrivals

    def test_serve_with_faults_still_accounts(self, capsys):
        assert main([
            "serve", *self.COMMON, "--fault-rate", "0.05",
        ]) == 0
        assert "accounted: True" in capsys.readouterr().out

    def test_serve_on_process_pool(self, capsys):
        assert main(["serve", *self.COMMON, "--processes"]) == 0
        out = capsys.readouterr().out
        assert "process pool" in out
