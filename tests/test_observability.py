"""Tests for the observability layer: tracer, metrics, exporters,
instrumentation — including the dangling-span regression tests on the
fault-injection error paths and the cache hit-rate end-to-end check."""

import json

import numpy as np
import pytest

from repro.algorithms import FixedPolicy, bfs
from repro.algorithms.base import MatvecDriver
from repro.cache import clear_caches
from repro.errors import TransferError, UnrecoverableFaultError
from repro.faults import FaultPlan
from repro.faults.injector import FaultInjector
from repro.faults.resilient import ResilientDpuSet
from repro.observability import (
    HOST_PID,
    MetricsRegistry,
    ObservabilitySession,
    SpanTracer,
    chrome_trace_events,
    iter_jsonl,
    observe,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.semiring import BOOLEAN_OR_AND
from repro.sparse import COOMatrix, SparseVector
from repro.upmem import SystemConfig
from repro.upmem.host import Dpu, DpuSet
from repro.upmem.transfer import TransferModel

pytestmark = pytest.mark.observability


def small_graph(seed=3, n=30):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=4 * n)
    dst = (src + rng.integers(1, n, size=4 * n)) % n
    edges = list({(int(u), int(v)) for u, v in zip(src, dst) if u != v})
    return COOMatrix.from_edges(edges, num_nodes=n)


# ---------------------------------------------------------------------------
# Tracer unit tests
# ---------------------------------------------------------------------------


class TestSpanTracer:
    def test_clock_starts_at_zero_and_is_monotonic(self):
        tracer = SpanTracer()
        assert tracer.now == 0.0
        tracer.advance(1e-3)
        tracer.advance(-5.0)  # negative advances are ignored
        assert tracer.now == pytest.approx(1e-3)

    def test_span_with_duration_advances_clock(self):
        tracer = SpanTracer()
        with tracer.span("phase", cat="test") as span:
            span.set_duration(2e-3)
        assert tracer.now == pytest.approx(2e-3)
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.dur == pytest.approx(2e-3)

    def test_parent_span_closes_at_child_advanced_clock(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            with tracer.span("child") as child:
                child.set_duration(5e-4)
        parent = [e for e in tracer.events if e.name == "parent"][0]
        assert parent.dur == pytest.approx(5e-4)

    def test_span_closes_on_exception_and_marks_aborted(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.open_span_count == 0
        assert tracer.aborted_spans == 1
        (event,) = tracer.events
        assert event.args.get("aborted") is True
        tracer.assert_no_dangling()

    def test_dpu_lane_maps_rank_to_pid(self):
        tracer = SpanTracer(dpus_per_rank=64)
        assert tracer.dpu_lane(0) == (1, 0)
        assert tracer.dpu_lane(63) == (1, 63)
        assert tracer.dpu_lane(64) == (2, 64)

    def test_dpu_spans_do_not_advance_clock(self):
        tracer = SpanTracer(dpus_per_rank=4)
        end = tracer.dpu_spans("exec", num_dpus=8, duration_s=1e-3,
                               start=0.0, cat="exec")
        assert end == pytest.approx(1e-3)
        assert tracer.now == 0.0
        assert len(tracer.events) == 8
        assert {e.pid for e in tracer.events} == {1, 2}

    def test_fault_instant_lands_on_victim_lane(self):
        tracer = SpanTracer(dpus_per_rank=64)
        event = tracer.fault_instant("crash", 70, action="retry")
        assert event.ph == "i"
        assert event.pid == 2 and event.tid == 70
        assert event.name == "fault:crash"


# ---------------------------------------------------------------------------
# Metrics unit tests
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7)
        for v in (1.0, 2.0, 3.0):
            registry.histogram("h").observe(v)
        snap = registry.snapshot(include_caches=False)
        assert snap.counters["c"] == pytest.approx(3.5)
        assert snap.gauges["g"] == 7
        h = snap.histograms["h"]
        assert h["count"] == 3
        assert h["mean"] == pytest.approx(2.0)
        assert h["min"] == 1.0 and h["max"] == 3.0
        assert snap.caches is None

    def test_snapshot_with_caches_embeds_cache_stats(self):
        snap = MetricsRegistry().snapshot(include_caches=True)
        assert "plan_cache" in snap.caches
        assert "kernel_cache" in snap.caches

    def test_as_dict_round_trips_json(self):
        registry = MetricsRegistry()
        registry.counter("bytes.scatter").inc(1024)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap.as_dict()))


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def _tracer(self):
        tracer = SpanTracer(dpus_per_rank=4)
        with tracer.span("kernel:test", cat="kernel") as span:
            tracer.dpu_spans("exec", num_dpus=6, duration_s=1e-3,
                             start=tracer.now, cat="exec")
            span.set_duration(1.5e-3)
        tracer.fault_instant("crash", 5)
        return tracer

    def test_chrome_trace_round_trips_json(self, tmp_path):
        tracer = self._tracer()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_chrome_trace_has_rank_process_metadata(self):
        doc = chrome_trace_events(self._tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"]) for e in meta}
        assert ("process_name", HOST_PID) in names
        # DPUs 0..5 at 4/rank span two ranks -> pids 1 and 2
        assert ("process_name", 1) in names
        assert ("process_name", 2) in names

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace_events(self._tracer())
        kernel = [e for e in doc["traceEvents"]
                  if e.get("name") == "kernel:test"][0]
        assert kernel["dur"] == pytest.approx(1500.0)  # 1.5 ms in us

    def test_jsonl_lines_parse_and_carry_metrics(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = write_jsonl(self._tracer(), tmp_path / "trace.jsonl",
                           metrics=registry.snapshot(include_caches=False))
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert "metrics" in parsed[-1]
        assert all("ph" in p for p in parsed[:-1])

    def test_iter_jsonl_matches_event_count(self):
        tracer = self._tracer()
        assert len(list(iter_jsonl(tracer))) == len(tracer.events)

    def test_trace_summary(self):
        summary = trace_summary(self._tracer())
        assert summary["instants"] == 1
        assert summary["spans"] == len(self._tracer().events) - 1
        assert summary["sim_seconds"] == pytest.approx(1.5e-3)


# ---------------------------------------------------------------------------
# Session lifecycle
# ---------------------------------------------------------------------------


class TestSession:
    def test_observe_restores_previous_session(self):
        from repro.observability import runtime

        assert runtime.ACTIVE is None
        with observe() as outer:
            assert runtime.ACTIVE is outer
            with observe(trace=False) as inner:
                assert runtime.ACTIVE is inner
                assert inner.tracer is None
            assert runtime.ACTIVE is outer
        assert runtime.ACTIVE is None

    def test_disabled_by_default(self):
        from repro.observability import runtime

        assert runtime.ACTIVE is None

    def test_session_flags(self):
        session = ObservabilitySession(trace=True, metrics=False)
        assert session.tracer is not None
        assert session.metrics is None
        assert session.snapshot() is None


# ---------------------------------------------------------------------------
# Instrumented end-to-end runs
# ---------------------------------------------------------------------------


class TestInstrumentedRun:
    def test_traced_bfs_produces_phase_spans(self):
        matrix = small_graph()
        system = SystemConfig(num_dpus=64)
        with observe() as session:
            run = bfs(matrix, 0, system, 8, policy=FixedPolicy("spmspv"))
        tracer = session.tracer
        tracer.assert_no_dangling()
        names = set(tracer.span_names())
        assert any(n.startswith("iteration:") for n in names)
        assert any(n.startswith("kernel:") for n in names)
        assert {"scatter", "exec", "gather"} <= names
        assert run.metrics is not None
        assert run.metrics.counter("kernel.launches") == run.num_iterations

    def test_traced_run_equals_untraced_run(self):
        matrix = small_graph(seed=11)
        system = SystemConfig(num_dpus=64)
        plain = bfs(matrix, 0, system, 8, policy=FixedPolicy("spmv"))
        with observe():
            traced = bfs(matrix, 0, system, 8, policy=FixedPolicy("spmv"))
        assert np.array_equal(plain.values, traced.values)
        assert plain.breakdown.total == pytest.approx(traced.breakdown.total)

    def test_every_allocated_dpu_gets_exec_span(self):
        matrix = small_graph(seed=5)
        system = SystemConfig(num_dpus=64)
        num_dpus = 8
        with observe(dpus_per_rank=system.dpus_per_rank) as session:
            bfs(matrix, 0, system, num_dpus, policy=FixedPolicy("spmspv"))
        execs = [e for e in session.tracer.events if e.name == "exec"]
        assert {e.tid for e in execs} == set(range(num_dpus))

    def test_fault_instants_share_the_timeline(self):
        matrix = small_graph(seed=9)
        system = SystemConfig(num_dpus=64)
        plan = FaultPlan.uniform(0.08, seed=21)
        with observe() as session:
            run = bfs(matrix, 0, system, 8, policy=FixedPolicy("spmv"),
                      fault_plan=plan)
        assert run.fault_log is not None and run.fault_log.num_injected > 0
        instants = [e for e in session.tracer.events
                    if e.ph == "i" and e.cat == "fault"]
        assert len(instants) >= run.fault_log.num_injected
        assert run.metrics.counter("faults.injected") == \
            run.fault_log.num_injected
        session.tracer.assert_no_dangling()

    def test_metrics_only_session_skips_tracing(self):
        matrix = small_graph(seed=2)
        system = SystemConfig(num_dpus=64)
        with observe(trace=False) as session:
            run = bfs(matrix, 0, system, 8, policy=FixedPolicy("spmv"))
        assert session.tracer is None
        assert run.metrics is not None
        assert run.metrics.counter("bytes.loaded") > 0


# ---------------------------------------------------------------------------
# Dangling-span regression tests on the error paths
# ---------------------------------------------------------------------------


class TestNoDanglingSpans:
    def _dpu_set(self, num_dpus=4, injector=None):
        system = SystemConfig(num_dpus=64)
        dpus = [Dpu(i, system.dpu) for i in range(num_dpus)]
        return DpuSet(dpus, TransferModel(system), injector=injector)

    def test_gather_of_unknown_region_closes_span(self):
        with observe() as session:
            dpu_set = self._dpu_set()
            dpu_set.scatter_arrays("x", [np.arange(4)] * 4)
            with pytest.raises(TransferError):
                dpu_set.gather_arrays("never-scattered")
            tracer = session.tracer
            assert tracer.open_span_count == 0
            tracer.assert_no_dangling()
            assert tracer.aborted_spans == 1
        aborted = [e for e in tracer.events if e.args.get("aborted")]
        assert [e.name for e in aborted] == ["gather:never-scattered"]

    def test_resilient_gather_error_closes_both_spans(self):
        plan = FaultPlan(dpu_crash_rate=0.01, seed=1)
        with observe() as session:
            rset = ResilientDpuSet(
                self._dpu_set(injector=FaultInjector(plan)), plan
            )
            with pytest.raises(TransferError):
                rset.gather_arrays("never-scattered")
            tracer = session.tracer
            assert tracer.open_span_count == 0
            # resilient wrapper + inner DpuSet span both force-closed
            assert tracer.aborted_spans == 2

    def test_unrecoverable_launch_closes_span(self):
        plan = FaultPlan(dpu_crash_rate=0.01, seed=1)
        with observe() as session:
            rset = ResilientDpuSet(
                self._dpu_set(injector=FaultInjector(plan)), plan
            )
            rset.scatter_arrays("x", [np.arange(4)] * 4)
            for dpu in rset.dpus:
                dpu.quarantine()
            with pytest.raises(UnrecoverableFaultError):
                rset.launch("y", lambda i: np.arange(4),
                            kernel_seconds=1e-4)
            assert session.tracer.open_span_count == 0
            assert session.tracer.aborted_spans >= 1

    def test_fault_injected_bfs_leaves_no_open_spans(self):
        """Even when recovery escalates all the way to a fatal
        UnrecoverableFaultError, every opened span must have closed."""
        matrix = small_graph(seed=13)
        system = SystemConfig(num_dpus=64)
        fatal_runs = 0
        for fault_seed in range(4):
            plan = FaultPlan.uniform(0.25, seed=fault_seed)
            with observe() as session:
                try:
                    bfs(matrix, 0, system, 8, policy=FixedPolicy("spmv"),
                        fault_plan=plan)
                except UnrecoverableFaultError:
                    fatal_runs += 1
            assert session.tracer.open_span_count == 0
        # at this rate at least one schedule kills the whole 8-DPU set,
        # so the abort path is genuinely exercised
        assert fatal_runs >= 1


# ---------------------------------------------------------------------------
# Cache hit-rate metrics, end to end
# ---------------------------------------------------------------------------


class TestCacheMetrics:
    def test_cache_stats_flow_into_run_metrics(self):
        clear_caches()
        matrix = small_graph(seed=17)
        system = SystemConfig(num_dpus=64)
        with observe(trace=False) as _:
            driver = MatvecDriver(matrix, system, 8)
            x = SparseVector.basis(0, matrix.nrows, value=1)
            driver.step(x, BOOLEAN_OR_AND, FixedPolicy("spmspv"), 0)
            first = _.snapshot(include_caches=True)
        assert first.caches["plan_cache"]["misses"] >= 1
        assert first.caches["plan_cache"]["hits"] == 0
        with observe(trace=False) as session:
            driver = MatvecDriver(matrix, system, 8)
            driver.step(x, BOOLEAN_OR_AND, FixedPolicy("spmspv"), 0)
            second = session.snapshot(include_caches=True)
        kernel_stats = second.caches["kernel_cache"]
        assert kernel_stats["hits"] >= 1
        assert 0.0 < kernel_stats["hit_rate"] <= 1.0
        # the kernel-cache hit short-circuits planning entirely: the
        # plan cache sees no new traffic on the second construction
        assert second.caches["plan_cache"]["misses"] == \
            first.caches["plan_cache"]["misses"]

    def test_cache_report_matches_metrics_snapshot(self):
        clear_caches()
        matrix = small_graph(seed=19)
        system = SystemConfig(num_dpus=64)
        with observe(trace=False) as session:
            bfs(matrix, 0, system, 8, policy=FixedPolicy("spmspv"))
            bfs(matrix, 0, system, 8, policy=FixedPolicy("spmspv"))
            snap = session.snapshot(include_caches=True)
        from repro.cache import cache_stats

        assert snap.caches == cache_stats()
