"""Tests for the semiring abstraction and the Table-1 instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemiringError
from repro.semiring import (
    ALGORITHM_SEMIRINGS,
    BOOLEAN_OR_AND,
    MAX_MIN,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    get_semiring,
    register_semiring,
    validate_semiring,
)

FLOAT_SAMPLES = [0.0, 1.0, 2.5, 7.0]


class TestAxioms:
    def test_plus_times(self):
        validate_semiring(PLUS_TIMES, FLOAT_SAMPLES)

    def test_min_plus(self):
        validate_semiring(MIN_PLUS, FLOAT_SAMPLES + [np.inf])

    def test_boolean(self):
        validate_semiring(BOOLEAN_OR_AND, [0, 1])

    def test_max_times(self):
        validate_semiring(MAX_TIMES, [0.0, 0.5, 1.0, 2.0])

    def test_max_min(self):
        validate_semiring(MAX_MIN, [-np.inf, 0.0, 1.0, np.inf])

    def test_invalid_semiring_detected(self):
        # subtraction is not associative/commutative
        broken = Semiring("broken", np.subtract, np.multiply, 0.0, 1.0)
        with pytest.raises(SemiringError):
            validate_semiring(broken, FLOAT_SAMPLES)


class TestOperations:
    def test_combine(self):
        assert MIN_PLUS.combine(2.0, 3.0) == 5.0
        assert PLUS_TIMES.combine(2.0, 3.0) == 6.0
        assert BOOLEAN_OR_AND.combine(1, 1) == 1
        assert BOOLEAN_OR_AND.combine(1, 0) == 0

    def test_reduce(self):
        assert PLUS_TIMES.reduce(np.array([1.0, 2.0, 3.0])) == 6.0
        assert MIN_PLUS.reduce(np.array([3.0, 1.0, 2.0])) == 1.0
        assert MIN_PLUS.reduce(np.array([])) == np.inf

    def test_scatter_reduce_plus(self):
        target = np.zeros(3)
        PLUS_TIMES.scatter_reduce(
            target, np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0])
        )
        assert np.array_equal(target, [3.0, 0.0, 5.0])

    def test_scatter_reduce_min(self):
        target = np.full(3, np.inf)
        MIN_PLUS.scatter_reduce(
            target, np.array([1, 1]), np.array([4.0, 2.0])
        )
        assert target[1] == 2.0

    def test_merge_dense(self):
        a, b = np.array([1.0, 5.0]), np.array([2.0, 3.0])
        assert np.array_equal(MIN_PLUS.merge_dense(a, b), [1.0, 3.0])
        assert np.array_equal(PLUS_TIMES.merge_dense(a, b), [3.0, 8.0])

    def test_zeros(self):
        z = MIN_PLUS.zeros(4, np.float64)
        assert np.all(np.isinf(z))
        z = BOOLEAN_OR_AND.zeros(4, np.int32)
        assert np.all(z == 0)

    def test_is_zero(self):
        assert MIN_PLUS.is_zero(np.array([np.inf, 1.0])).tolist() == [True, False]
        # -inf is NOT the min-plus zero
        assert MIN_PLUS.is_zero(np.array([-np.inf])).tolist() == [False]
        assert PLUS_TIMES.is_zero(np.array([0.0, 2.0])).tolist() == [True, False]


class TestRegistry:
    def test_lookup(self):
        assert get_semiring("min_plus") is MIN_PLUS
        assert get_semiring("plus_times") is PLUS_TIMES

    def test_unknown(self):
        with pytest.raises(SemiringError, match="unknown semiring"):
            get_semiring("does-not-exist")

    def test_register_duplicate_rejected(self):
        with pytest.raises(SemiringError):
            register_semiring(PLUS_TIMES)

    def test_register_new(self):
        custom = Semiring("test_or_times", np.maximum, np.multiply, 0.0, 1.0)
        register_semiring(custom)
        assert get_semiring("test_or_times") is custom

    def test_table1_mapping(self):
        assert ALGORITHM_SEMIRINGS["bfs"] is BOOLEAN_OR_AND
        assert ALGORITHM_SEMIRINGS["sssp"] is MIN_PLUS
        assert ALGORITHM_SEMIRINGS["ppr"] is PLUS_TIMES


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
    st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
)
def test_property_minplus_distributes(xs, ys):
    """min(a + min(ys)) == min over pairs — distributivity at array scale."""
    a = min(xs)
    via_reduce = MIN_PLUS.combine(a, MIN_PLUS.reduce(np.array(ys)))
    via_pairs = min(a + y for y in ys)
    assert np.isclose(via_reduce, via_pairs)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=30))
def test_property_boolean_reduce_is_any(bits):
    assert BOOLEAN_OR_AND.reduce(np.array(bits)) == int(any(bits))
