"""Serving-layer functional tests: admission, deadlines, fusion, retry.

The clock-dependent paths (quota refill, breaker cooldown, deadline
expiry) all run on an injected fake clock, so every enforcement point —
admission, dequeue, between iterations — is exercised deterministically
without sleeping.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from conftest import random_graph

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.ppr import normalize_columns, ppr
from repro.algorithms.sssp import sssp
from repro.errors import (
    DeadlineExceededError,
    DpuFaultError,
    RejectedError,
    ReproError,
)
from repro.serving import (
    AdmissionController,
    CircuitBreaker,
    GraphService,
    LoadgenConfig,
    QueryRequest,
    QueryStatus,
    TenantConfig,
    TokenBucket,
    batched_bfs,
    batched_ppr,
    batched_sssp,
    run_load,
    serve_batch,
)
from repro.serving.batched import BatchedSpmmDriver
from repro.serving.service import RetryPolicy
from repro.upmem.config import SystemConfig

pytestmark = pytest.mark.serving

NUM_DPUS = 64


class FakeClock:
    """Deterministic service clock: advances only when told (or per call)."""

    def __init__(self, auto_advance: float = 0.0) -> None:
        self.t = 0.0
        self.auto_advance = auto_advance

    def __call__(self) -> float:
        self.t += self.auto_advance
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def system():
    return SystemConfig(num_dpus=NUM_DPUS)


@pytest.fixture()
def wgraph():
    return random_graph(n=120, avg_degree=5.0, seed=3, weights="random")


def make_service(system, wgraph, **kwargs) -> GraphService:
    service = GraphService(system, NUM_DPUS, **kwargs)
    service.add_graph("g", wgraph)
    return service


def run_async(coro):
    return asyncio.run(coro)


# -- admission primitives -----------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(TenantConfig(rate=10.0, burst=2.0), now=0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # burst exhausted
        assert bucket.try_acquire(0.1)      # 0.1s * 10/s = 1 token back
        assert not bucket.try_acquire(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(TenantConfig(rate=100.0, burst=3.0), now=0.0)
        for _ in range(3):
            assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(10.0)


class TestAdmissionController:
    def test_queue_full_does_not_consume_quota(self):
        controller = AdmissionController(1, TenantConfig(rate=0.0, burst=1.0))
        with pytest.raises(RejectedError) as info:
            controller.admit("t", queue_depth=1, now=0.0)
        assert info.value.reason == "queue-full"
        # the overload shed did not burn the tenant's only token
        controller.admit("t", queue_depth=0, now=0.0)
        with pytest.raises(RejectedError) as info:
            controller.admit("t", queue_depth=0, now=0.0)
        assert info.value.reason == "quota"


class TestCircuitBreaker:
    def test_trips_after_streak_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        assert breaker.allow(0.0)
        breaker.on_failure(0.0)
        assert breaker.allow(0.0)  # one failure: still closed
        breaker.on_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(0.5)           # cooling down
        assert breaker.allow(1.5)               # half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(1.5)           # only one probe
        breaker.on_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        assert breaker.allow(2.0)  # probe
        breaker.on_failure(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(2.5)

    def test_lost_probe_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        assert breaker.allow(1.5)  # probe admitted...
        breaker.on_probe_lost(1.5)  # ...then shed before running
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1  # a shed probe is not a trip
        assert not breaker.allow(2.0)  # fresh cooldown from 1.5
        assert breaker.allow(2.6)  # next probe

    def test_stale_probe_replaced_after_cooldown(self):
        # a probe that expires at dequeue never reports back; the
        # breaker must not reject forever waiting for its verdict
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        assert breaker.allow(1.0)  # probe vanishes silently
        assert not breaker.allow(1.5)
        assert breaker.allow(2.5)  # replacement probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.on_success()
        assert breaker.state == CircuitBreaker.CLOSED


# -- batched fusion engine ----------------------------------------------------

class TestBatchedBitIdentity:
    SOURCES = [0, 7, 23, 64]

    def test_batched_bfs_matches_single_source(self, system, wgraph):
        driver = BatchedSpmmDriver(wgraph, system, NUM_DPUS)
        run = batched_bfs(driver, self.SOURCES)
        for j, source in enumerate(self.SOURCES):
            single = bfs(wgraph, source, system, NUM_DPUS)
            assert run.values[:, j].tobytes() == single.values.tobytes()

    def test_batched_sssp_matches_single_source(self, system, wgraph):
        driver = BatchedSpmmDriver(wgraph, system, NUM_DPUS)
        run = batched_sssp(driver, self.SOURCES)
        for j, source in enumerate(self.SOURCES):
            single = sssp(wgraph, source, system, NUM_DPUS)
            assert run.values[:, j].tobytes() == single.values.tobytes()

    def test_batched_ppr_matches_single_source(self, system, wgraph):
        driver = BatchedSpmmDriver(
            normalize_columns(wgraph), system, NUM_DPUS
        )
        run = batched_ppr(driver, self.SOURCES)
        for j, source in enumerate(self.SOURCES):
            single = ppr(wgraph, source, system, NUM_DPUS)
            assert run.values[:, j].tobytes() == single.values.tobytes()

    def test_cancelled_column_leaves_others_bit_identical(
        self, system, wgraph
    ):
        driver = BatchedSpmmDriver(wgraph, system, NUM_DPUS)
        full = batched_bfs(driver, self.SOURCES)

        def cancel_second(iteration):
            mask = np.zeros(len(self.SOURCES), dtype=bool)
            mask[1] = iteration >= 1
            return mask

        partial = batched_bfs(
            driver, self.SOURCES, cancel_hook=cancel_second
        )
        assert partial.cancelled_columns.tolist() == [
            False, True, False, False,
        ]
        for j in (0, 2, 3):
            assert (
                partial.values[:, j].tobytes()
                == full.values[:, j].tobytes()
            )
        # the cancelled column stopped early: no level beyond iteration 1
        assert partial.values[:, 1].max() <= 1


# -- service: admission control ----------------------------------------------

class TestAdmission:
    def test_quota_shed_with_structured_reason(self, system, wgraph):
        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)
        service.admission.configure_tenant(
            "greedy", TenantConfig(rate=0.0, burst=2.0)
        )

        async def scenario():
            async with service:
                outcomes = [
                    await service.submit_outcome(QueryRequest(
                        tenant="greedy", graph="g",
                        algorithm="bfs", source=i,
                    ))
                    for i in range(5)
                ]
            return outcomes

        outcomes = run_async(scenario())
        statuses = [o.status for o in outcomes]
        assert statuses.count(QueryStatus.COMPLETED) == 2
        assert statuses.count(QueryStatus.SHED) == 3
        for shed in outcomes[2:]:
            assert shed.reason == "quota"
        assert service.counters["shed_quota"] == 3
        assert service.slo_accounting_closes()

    def test_bounded_queue_sheds_queue_full(self, system, wgraph):
        clock = FakeClock()
        service = make_service(
            system, wgraph, clock=clock, queue_capacity=2,
            default_tenant=TenantConfig(rate=1000.0, burst=1000.0),
        )

        async def scenario():
            # no dispatcher yet: the queue can only fill
            futures, rejections = [], []
            for i in range(5):
                try:
                    futures.append(service.submit_nowait(QueryRequest(
                        tenant="t", graph="g", algorithm="bfs", source=i,
                    )))
                except RejectedError as exc:
                    rejections.append(exc)
            assert service.queue_depth == 2  # bounded, provably
            assert len(rejections) == 3
            assert all(r.reason == "queue-full" for r in rejections)
            async with service:
                pass  # drain on stop
            return await asyncio.gather(*futures)

        results = run_async(scenario())
        assert all(r.status is QueryStatus.COMPLETED for r in results)
        assert service.slo_accounting_closes()

    def test_graph_not_resident(self, system, wgraph):
        service = make_service(system, wgraph)

        async def scenario():
            async with service:
                with pytest.raises(RejectedError) as info:
                    await service.submit(QueryRequest(
                        tenant="t", graph="nope", algorithm="bfs", source=0,
                    ))
            return info.value

        exc = run_async(scenario())
        assert exc.reason == "graph-not-resident"
        assert service.counters["shed_graph_not_resident"] == 1


# -- service: deadlines at all three enforcement points -----------------------

class TestDeadlines:
    def test_expired_at_admission(self, system, wgraph):
        service = make_service(system, wgraph, clock=FakeClock())

        async def scenario():
            async with service:
                return await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                    deadline_s=0.0,
                ))

        outcome = run_async(scenario())
        assert outcome.status is QueryStatus.DEADLINE
        assert outcome.reason == "admission"
        assert service.counters["deadline_admission"] == 1

    def test_expired_at_dequeue(self, system, wgraph):
        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def scenario():
            await service.start()
            future = service.submit_nowait(QueryRequest(
                tenant="t", graph="g", algorithm="bfs", source=0,
                deadline_s=0.5,
            ))
            clock.advance(1.0)  # expires while queued, before any kernel
            result = await future
            await service.stop()
            return result

        result = run_async(scenario())
        assert result.status is QueryStatus.DEADLINE
        assert result.reason == "dequeue"
        assert service.counters["deadline_dequeue"] == 1
        assert service.slo_accounting_closes()

    def test_cancelled_between_iterations(self, system, wgraph):
        # every clock read advances time, so the deadline passes while
        # the traversal is mid-flight -> the iteration watchdog cancels
        clock = FakeClock(auto_advance=0.01)
        service = make_service(system, wgraph, clock=clock)

        async def scenario():
            async with service:
                return await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                    deadline_s=0.05,
                ))

        result = run_async(scenario())
        assert result.status is QueryStatus.DEADLINE
        assert result.reason == "iteration"
        assert service.counters["deadline_iteration"] == 1
        assert service.slo_accounting_closes()

    def test_shared_run_aborts_when_all_members_expire(
        self, system, wgraph
    ):
        clock = FakeClock(auto_advance=0.01)
        service = make_service(system, wgraph, clock=clock)

        async def scenario():
            async with service:
                return await asyncio.gather(*(
                    service.submit_outcome(QueryRequest(
                        tenant="t", graph="g", algorithm="pagerank",
                        deadline_s=0.05,
                    ))
                    for _ in range(2)
                ))

        results = run_async(scenario())
        assert all(r.status is QueryStatus.DEADLINE for r in results)
        assert all(r.reason == "iteration" for r in results)
        assert service.slo_accounting_closes()


# -- service: fusion ----------------------------------------------------------

class TestFusion:
    def test_queued_bfs_queries_fuse_into_one_batch(self, system, wgraph):
        service = make_service(system, wgraph)
        sources = [0, 7, 23, 64]

        async def scenario():
            futures = [
                service.submit_nowait(QueryRequest(
                    tenant=f"t{i}", graph="g", algorithm="bfs",
                    source=source,
                ))
                for i, source in enumerate(sources)
            ]
            async with service:
                pass
            return await asyncio.gather(*futures)

        results = run_async(scenario())
        assert service.counters["batches"] == 1
        assert all(r.batch_size == len(sources) for r in results)
        for result, source in zip(results, sources):
            single = bfs(wgraph, source, system, NUM_DPUS)
            assert result.values.tobytes() == single.values.tobytes()

    def test_incompatible_queries_do_not_fuse(self, system, wgraph):
        service = make_service(system, wgraph)

        async def scenario():
            futures = [
                service.submit_nowait(QueryRequest(
                    tenant="t", graph="g", algorithm=a, source=s,
                ))
                for a, s in (("bfs", 0), ("sssp", 0), ("bfs", 7))
            ]
            async with service:
                pass
            return await asyncio.gather(*futures)

        results = run_async(scenario())
        assert service.counters["batches"] == 2  # {bfs, bfs} + {sssp}
        assert all(r.status is QueryStatus.COMPLETED for r in results)

    def test_global_queries_share_one_run(self, system, wgraph):
        service = make_service(system, wgraph)

        async def scenario():
            futures = [
                service.submit_nowait(QueryRequest(
                    tenant=f"t{i}", graph="g", algorithm="pagerank",
                ))
                for i in range(3)
            ]
            async with service:
                pass
            return await asyncio.gather(*futures)

        results = run_async(scenario())
        assert service.counters["batches"] == 1
        reference = pagerank(wgraph, system, NUM_DPUS)
        for result in results:
            assert result.values.tobytes() == reference.values.tobytes()


# -- service: retry / hedging / circuit breaker -------------------------------

class TestRetriesAndBreaker:
    def test_transient_failure_retries_then_completes(
        self, system, wgraph
    ):
        service = make_service(
            system, wgraph,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=1e-6),
        )
        real = service._run_batch
        failures = {"left": 1}

        def flaky(graph, batch, retries):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise DpuFaultError("injected transient launch failure")
            return real(graph, batch, retries)

        service._run_batch = flaky

        async def scenario():
            async with service:
                return await service.submit(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                ))

        result = run_async(scenario())
        assert result.status is QueryStatus.COMPLETED
        assert result.retries == 1
        assert service.counters["retries"] == 1
        single = bfs(wgraph, 0, system, NUM_DPUS)
        assert result.values.tobytes() == single.values.tobytes()

    def test_hedge_rebuilds_machine_after_streak(self, system, wgraph):
        service = make_service(
            system, wgraph,
            retry=RetryPolicy(
                max_attempts=3, backoff_base_s=1e-6, hedge_after=1
            ),
        )
        real = service._run_batch
        failures = {"left": 2}

        def flaky(graph, batch, retries):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise DpuFaultError("injected transient launch failure")
            return real(graph, batch, retries)

        service._run_batch = flaky

        async def scenario():
            async with service:
                return await service.submit(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                ))

        result = run_async(scenario())
        assert result.status is QueryStatus.COMPLETED
        assert service.counters["hedges"] >= 1

    def test_breaker_fails_fast_then_half_opens(self, system, wgraph):
        clock = FakeClock()
        service = make_service(
            system, wgraph, clock=clock,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=1e-6),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, cooldown_s=10.0
            ),
        )
        service._run_batch = lambda graph, batch, retries: (_ for _ in ()).throw(
            DpuFaultError("injected persistent failure")
        )

        async def scenario():
            async with service:
                first = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                ))
                fast_fail = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=1,
                ))
                clock.advance(60.0)  # past the cooldown: half-open probe
                probe = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=2,
                ))
            return first, fast_fail, probe

        first, fast_fail, probe = run_async(scenario())
        assert first.status is QueryStatus.FAILED
        assert first.reason == "retries-exhausted"
        assert fast_fail.status is QueryStatus.SHED
        assert fast_fail.reason == "circuit-open"
        assert probe.status is QueryStatus.FAILED  # probe admitted, ran
        assert service.counters["shed_circuit_open"] == 1
        assert service.graph("g").breaker.state == CircuitBreaker.OPEN
        assert service.slo_accounting_closes()


# -- service: malformed requests must never kill the dispatcher ---------------

class TestDispatcherResilience:
    """Malformed or unlucky requests shed or fail loudly — the single
    dispatcher task survives, so other tenants' futures always resolve."""

    def test_missing_or_out_of_range_source_sheds(self, system, wgraph):
        service = make_service(system, wgraph)

        async def scenario():
            async with service:
                missing = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs",
                ))
                oob = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="sssp",
                    source=wgraph.nrows,
                ))
                good = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                ))
            return missing, oob, good

        missing, oob, good = run_async(scenario())
        for shed in (missing, oob):
            assert shed.status is QueryStatus.SHED
            assert shed.reason == "invalid-source"
        assert good.status is QueryStatus.COMPLETED  # dispatcher alive
        assert service.counters["shed_invalid_source"] == 2
        assert service.slo_accounting_closes()

    def test_unknown_algorithm_is_uncounted_caller_error(
        self, system, wgraph
    ):
        service = make_service(system, wgraph)

        async def scenario():
            async with service:
                with pytest.raises(ReproError, match="unknown algorithm"):
                    service.submit_nowait(QueryRequest(
                        tenant="t", graph="g", algorithm="katz", source=0,
                    ))

        run_async(scenario())
        assert service.counters["submitted"] == 0
        assert service.slo_accounting_closes()

    def test_unexpected_executor_error_fails_batch_not_dispatcher(
        self, system, wgraph
    ):
        service = make_service(system, wgraph)
        real = service._run_batch
        boom = {"left": 1}

        def broken(graph, batch, retries):
            if boom["left"]:
                boom["left"] -= 1
                raise ReproError("injected non-transient executor bug")
            return real(graph, batch, retries)

        service._run_batch = broken

        async def scenario():
            async with service:
                first = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                ))
                second = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=1,
                ))
            return first, second

        first, second = run_async(scenario())
        assert first.status is QueryStatus.FAILED
        assert first.reason == "internal-error: ReproError"
        assert second.status is QueryStatus.COMPLETED  # loop kept draining
        assert service.counters["internal_errors"] == 1
        assert service.slo_accounting_closes()

    def test_probe_shed_by_quota_reopens_breaker(self, system, wgraph):
        clock = FakeClock()
        service = make_service(
            system, wgraph, clock=clock,
            retry=RetryPolicy(max_attempts=1, backoff_base_s=1e-6),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, cooldown_s=10.0
            ),
        )
        service.admission.configure_tenant(
            "t", TenantConfig(rate=0.0, burst=1.0)
        )
        service._run_batch = lambda graph, batch, retries: (
            (_ for _ in ()).throw(DpuFaultError("injected"))
        )

        async def scenario():
            async with service:
                first = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=0,
                ))  # burns the only token, trips the breaker
                clock.advance(60.0)
                probe = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=1,
                ))  # admitted as the probe, then shed by quota
                behind = await service.submit_outcome(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=2,
                ))  # breaker re-opened, not wedged half-open
            return first, probe, behind

        first, probe, behind = run_async(scenario())
        assert first.status is QueryStatus.FAILED
        assert probe.status is QueryStatus.SHED
        assert probe.reason == "quota"
        assert behind.status is QueryStatus.SHED
        assert behind.reason == "circuit-open"
        breaker = service.graph("g").breaker
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_at == 60.0  # fresh cooldown from the shed
        assert service.slo_accounting_closes()


# -- loadgen ------------------------------------------------------------------

class TestLoadgen:
    def test_closed_loop_report_accounts_everything(self, system, wgraph):
        service = make_service(system, wgraph)
        config = LoadgenConfig(
            graph="g", tenants=3, queries_per_tenant=4, seed=9,
        )

        async def scenario():
            async with service:
                return await run_load(service, config)

        report, results = run_async(scenario())
        assert report.submitted == 12
        assert report.accounted
        assert report.completed > 0
        assert report.qps > 0
        assert report.p99_latency_s >= report.p50_latency_s > 0
        assert service.slo_accounting_closes()

    def test_same_seed_same_workload(self, system, wgraph):
        from repro.serving.loadgen import generate_requests

        config = LoadgenConfig(graph="g", tenants=2, queries_per_tenant=5)
        a = generate_requests(config, wgraph.nrows)
        b = generate_requests(config, wgraph.nrows)
        assert [(r.tenant, r.algorithm, r.source) for r in a] == \
               [(r.tenant, r.algorithm, r.source) for r in b]


# -- offline process-pool path ------------------------------------------------

class TestProcessPoolServing:
    QUERIES = [
        {"algorithm": "bfs", "source": 0},
        {"algorithm": "sssp", "source": 7},
        {"algorithm": "pagerank"},
        {"algorithm": "cc"},
    ]

    def test_process_parallel_differential(self, system, wgraph):
        inline = serve_batch(
            wgraph, system, NUM_DPUS, self.QUERIES, processes=False
        )
        pooled = serve_batch(
            wgraph, system, NUM_DPUS, self.QUERIES, processes=True
        )
        assert len(inline) == len(pooled) == len(self.QUERIES)
        for a, b in zip(inline, pooled):
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes()


# -- write mix (PR 8: batched edge churn through the service) -----------------

class TestWriteMix:
    def test_write_mix_accounting_closes(self, system, wgraph):
        """Read/write mix: every request resolves exactly once, the
        mutations counter matches completed writes, and the resident
        graph's version equals the number of applied batches."""
        service = make_service(system, wgraph)
        config = LoadgenConfig(
            graph="g", tenants=4, queries_per_tenant=8,
            write_fraction=0.3, seed=13,
        )

        async def main():
            async with service:
                return await run_load(service, config)

        report, results = run_async(main())
        assert report.accounted
        assert report.mutations > 0
        completed_writes = sum(
            1 for r in results
            if r.algorithm == "mutate" and r.status is QueryStatus.COMPLETED
        )
        assert report.mutations == completed_writes
        assert service.graph("g").mutable.version == completed_writes
        for result in results:
            if result.algorithm == "mutate" and \
                    result.status is QueryStatus.COMPLETED:
                assert result.mutation is not None
                assert result.mutation["version"] >= 1

    def test_zero_write_fraction_stream_byte_identical(self, wgraph):
        """write_fraction=0 must not consume extra rng draws, so legacy
        seeded scenarios replay identically."""
        from repro.serving.loadgen import generate_requests

        legacy = generate_requests(
            LoadgenConfig(graph="g", tenants=3, queries_per_tenant=6,
                          seed=21),
            wgraph.nrows,
        )
        explicit = generate_requests(
            LoadgenConfig(graph="g", tenants=3, queries_per_tenant=6,
                          seed=21, write_fraction=0.0),
            wgraph.nrows,
        )
        assert [(r.tenant, r.algorithm, r.source) for r in legacy] == \
               [(r.tenant, r.algorithm, r.source) for r in explicit]

    def test_write_barrier_fifo_ordering(self, system, wgraph):
        """Reads fuse up to (never across) a same-graph write; writes
        fuse with writes; a read behind a write stays behind it."""
        from repro.dynamic import EdgeBatch
        from repro.serving.request import MUTATE

        service = make_service(system, wgraph)

        async def main():
            reads_a = [
                service.submit_nowait(QueryRequest(
                    tenant="t", graph="g", algorithm="bfs", source=i,
                )) for i in range(2)
            ]
            writes = [
                service.submit_nowait(QueryRequest(
                    tenant="t", graph="g", algorithm=MUTATE,
                    edges=EdgeBatch.of(inserts=[(0, i)]),
                )) for i in range(2)
            ]
            read_b = service.submit_nowait(QueryRequest(
                tenant="t", graph="g", algorithm="bfs", source=5,
            ))
            del reads_a, writes, read_b
            first = service._take_batch()
            second = service._take_batch()
            third = service._take_batch()
            return (
                [p.request.algorithm for p in first],
                [p.request.algorithm for p in second],
                [p.request.algorithm for p in third],
            )

        first, second, third = run_async(main())
        assert first == ["bfs", "bfs"]       # reads fuse, stop at barrier
        assert second == ["mutate", "mutate"]  # writes fuse with writes
        assert third == ["bfs"]              # trailing read stays behind

    def test_mutate_mid_batched_bfs_pins_snapshot(self, system, wgraph):
        """A write landing between iterations of an in-flight batched
        BFS never corrupts it: the run is pinned to the snapshot that
        was resident at admission."""
        from repro.dynamic import random_edge_batch

        service = make_service(system, wgraph)
        graph = service.graph("g")
        sources = [0, 3, 9]
        reference = batched_bfs(graph.driver_for("bfs"), sources)

        mutated = {"done": False}

        def cancel_hook(iteration: int) -> np.ndarray:
            if iteration == 1 and not mutated["done"]:
                batch = random_edge_batch(
                    np.random.default_rng(2), wgraph.nrows,
                    num_inserts=8, num_deletes=4,
                    edge_pool=graph.mutable.edge_array(),
                )
                graph.mutable.apply(batch)
                mutated["done"] = True
            return np.zeros(len(sources), dtype=bool)

        pinned = graph.driver_for("bfs")
        version_before = graph.mutable.version
        in_flight = batched_bfs(pinned, sources, cancel_hook=cancel_hook)
        assert mutated["done"]
        assert graph.mutable.version == version_before + 1
        assert in_flight.values.tobytes() == reference.values.tobytes(), \
            "in-flight read saw the concurrent write"
        # the NEXT read resolves a fresh driver on the new snapshot
        refreshed = graph.driver_for("bfs")
        assert refreshed is not pinned
        post = batched_bfs(refreshed, sources)
        full = bfs(graph.matrix, 0, system, NUM_DPUS)
        assert post.values[:, 0].tobytes() == full.values.tobytes()

    def test_write_faults_retry_exactly_once(self, system, wgraph):
        """Transfer corruption on the write path is transient: the batch
        retries, but the mutation applies exactly once."""
        from repro.faults import FaultPlan
        from repro.dynamic import EdgeBatch
        from repro.serving.request import MUTATE

        service = make_service(system, wgraph)
        # make_service resident graph has no fault plan; re-add with one
        plan = FaultPlan(transfer_corruption_rate=0.6, seed=3)
        service.add_graph("faulty", wgraph, fault_plan=plan)

        async def main():
            async with service:
                results = []
                for i in range(8):
                    results.append(await service.submit_outcome(
                        QueryRequest(
                            tenant="t", graph="faulty", algorithm=MUTATE,
                            edges=EdgeBatch.of(inserts=[(0, 10 + i)]),
                        )
                    ))
                return results

        results = run_async(main())
        counters = service.counter_snapshot()
        assert counters.get("write_faults", 0) >= 1, \
            "corruption rate 0.6 over 8 writes drew no fault"
        completed = [
            r for r in results if r.status is QueryStatus.COMPLETED
        ]
        # exactly-once: the resident version counts each completed batch
        # once, no matter how many retries its scatter needed
        assert service.graph("faulty").mutable.version == len(completed)
        assert any(r.retries > 0 for r in completed) or \
            all(r.status is QueryStatus.FAILED for r in results)


# -- PR 10 satellites: capacity, priority scheduling, retry jitter ------------

class TestCapacityAccounting:
    """Cross-graph MRAM accounting at add_graph."""

    def test_default_budget_is_physical_capacity(self, system, wgraph):
        service = make_service(system, wgraph)
        assert service.mram_budget_bytes == \
            NUM_DPUS * system.dpu.mram_bytes
        assert service.graph("g").footprint_bytes > 0

    def test_over_budget_load_is_rejected(self, system, wgraph):
        one = 2 * wgraph.nbytes  # one resident graph's footprint
        service = GraphService(
            system, NUM_DPUS, mram_budget_bytes=one + one // 2
        )
        service.add_graph("g", wgraph)
        with pytest.raises(RejectedError) as info:
            service.add_graph("h", wgraph)
        assert info.value.reason == "capacity"
        assert service.counters["shed_capacity"] == 1
        with pytest.raises(KeyError):
            service.graph("h")

    def test_replacement_releases_the_old_footprint(self, system, wgraph):
        one = 2 * wgraph.nbytes
        service = GraphService(
            system, NUM_DPUS, mram_budget_bytes=one + one // 2
        )
        service.add_graph("g", wgraph)
        # reloading under the same name charges only the delta
        service.add_graph("g", wgraph)
        assert service.graph("g") is not None

    def test_budget_admits_until_full(self, system, wgraph):
        one = 2 * wgraph.nbytes
        service = GraphService(
            system, NUM_DPUS, mram_budget_bytes=3 * one
        )
        for name in ("a", "b", "c"):
            service.add_graph(name, wgraph)
        with pytest.raises(RejectedError) as info:
            service.add_graph("d", wgraph)
        assert info.value.reason == "capacity"


class TestPriorityScheduling:
    """Aging-weighted priority dequeue in _take_batch."""

    def _submit(self, service, **kwargs):
        defaults = dict(tenant="t", graph="g", algorithm="bfs", source=0)
        defaults.update(kwargs)
        return service.submit_nowait(QueryRequest(**defaults))

    def test_higher_priority_dequeues_first(self, system, wgraph):
        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            self._submit(service, algorithm="bfs", source=0, priority=0)
            self._submit(service, algorithm="sssp", source=1, priority=5)
            first = service._take_batch()
            second = service._take_batch()
            return (
                [p.request.algorithm for p in first],
                [p.request.algorithm for p in second],
            )

        first, second = run_async(main())
        assert first == ["sssp"], "priority 5 should overtake priority 0"
        assert second == ["bfs"]

    def test_fifo_within_a_priority_class(self, system, wgraph):
        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            self._submit(service, algorithm="sssp", source=0, priority=2)
            self._submit(service, algorithm="bfs", source=1, priority=2)
            return [p.request.algorithm for p in service._take_batch()]

        assert run_async(main()) == ["sssp"], (
            "equal priorities must keep submission (FIFO) order"
        )

    def test_all_zero_priorities_degenerate_to_fifo(self, system, wgraph):
        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            order = []
            self._submit(service, algorithm="ppr", source=0)
            self._submit(service, algorithm="bfs", source=1)
            self._submit(service, algorithm="sssp", source=2)
            for _ in range(3):
                order.extend(
                    p.request.algorithm for p in service._take_batch()
                )
            return order

        assert run_async(main()) == ["ppr", "bfs", "sssp"]

    def test_aging_prevents_starvation(self, system, wgraph):
        clock = FakeClock()
        service = make_service(
            system, wgraph, clock=clock, priority_aging_rate=1.0
        )

        async def main():
            self._submit(service, algorithm="bfs", source=0, priority=0)
            clock.advance(10.0)  # the old request accrues 10 of aging
            self._submit(service, algorithm="sssp", source=1, priority=5)
            return [p.request.algorithm for p in service._take_batch()]

        assert run_async(main()) == ["bfs"], (
            "an aged priority-0 request must beat a fresh priority-5 one"
        )

    def test_priority_fuses_equal_keys_into_one_batch(self, system, wgraph):
        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            self._submit(service, source=0, priority=0)
            self._submit(service, algorithm="sssp", source=1, priority=9)
            self._submit(service, source=2, priority=0)
            first = service._take_batch()
            second = service._take_batch()
            return (
                [(p.request.algorithm, p.request.source) for p in first],
                [(p.request.algorithm, p.request.source) for p in second],
            )

        first, second = run_async(main())
        assert first == [("sssp", 1)]
        # both bfs companions fuse once the high-priority head is served
        assert second == [("bfs", 0), ("bfs", 2)]

    def test_priority_never_overtakes_a_same_graph_write(
        self, system, wgraph
    ):
        from repro.dynamic import EdgeBatch
        from repro.serving.request import MUTATE

        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            self._submit(
                service, algorithm=MUTATE, source=None,
                edges=EdgeBatch.of(inserts=[(0, 1)]), priority=0,
            )
            self._submit(service, source=0, priority=50)
            first = service._take_batch()
            second = service._take_batch()
            return (
                [p.request.algorithm for p in first],
                [p.request.algorithm for p in second],
            )

        first, second = run_async(main())
        assert first == ["mutate"], (
            "a read admitted after a same-graph write must stay behind it"
        )
        assert second == ["bfs"]

    def test_urgent_write_never_overtakes_an_earlier_read(
        self, system, wgraph
    ):
        from repro.dynamic import EdgeBatch
        from repro.serving.request import MUTATE

        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            self._submit(service, source=0, priority=0)
            self._submit(
                service, algorithm=MUTATE, source=None,
                edges=EdgeBatch.of(inserts=[(0, 1)]), priority=50,
            )
            return [p.request.algorithm for p in service._take_batch()]

        assert run_async(main()) == ["bfs"], (
            "a write must not be reordered before an earlier same-graph "
            "read, regardless of priority"
        )

    def test_urgent_read_on_other_graph_overtakes(self, system, wgraph):
        from repro.dynamic import EdgeBatch
        from repro.serving.request import MUTATE

        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)
        service.add_graph("h", wgraph)

        async def main():
            self._submit(
                service, algorithm=MUTATE, source=None,
                edges=EdgeBatch.of(inserts=[(0, 1)]), priority=0,
            )
            self._submit(service, graph="h", source=0, priority=5)
            return [
                (p.request.graph, p.request.algorithm)
                for p in service._take_batch()
            ]

        assert run_async(main()) == [("h", "bfs")], (
            "the write barrier is per-graph: other graphs may overtake"
        )

    def test_write_barrier_fifo_still_holds_end_to_end(
        self, system, wgraph
    ):
        # the original PR 7 barrier scenario, now with priorities mixed
        # in: reads fuse up to (never across) a same-graph write
        from repro.dynamic import EdgeBatch
        from repro.serving.request import MUTATE

        clock = FakeClock()
        service = make_service(system, wgraph, clock=clock)

        async def main():
            for i in range(2):
                self._submit(service, source=i, priority=1)
            for i in range(2):
                self._submit(
                    service, algorithm=MUTATE, source=None,
                    edges=EdgeBatch.of(inserts=[(0, i)]), priority=3,
                )
            self._submit(service, source=5, priority=7)
            first = service._take_batch()
            second = service._take_batch()
            third = service._take_batch()
            return tuple(
                [p.request.algorithm for p in batch]
                for batch in (first, second, third)
            )

        first, second, third = run_async(main())
        assert first == ["bfs", "bfs"]
        assert second == ["mutate", "mutate"]
        assert third == ["bfs"]


class TestRetryJitter:
    def test_backoff_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(jitter=0.5, seed=3)
        a = np.random.default_rng(policy.seed)
        b = np.random.default_rng(policy.seed)
        xs = [policy.backoff_s(2, a) for _ in range(20)]
        ys = [policy.backoff_s(2, b) for _ in range(20)]
        assert xs == ys, "same policy seed must draw the same jitter"
        base = policy.backoff_base_s * policy.backoff_factor
        assert all(0.5 * base <= x <= base for x in xs)
        assert len(set(xs)) > 1

    def test_zero_jitter_matches_legacy_backoff(self):
        legacy = RetryPolicy()
        jittery = RetryPolicy(jitter=0.0, seed=9)
        rng = np.random.default_rng(9)
        for attempt in (1, 2, 3):
            assert jittery.backoff_s(attempt, rng) == \
                legacy.backoff_s(attempt)

    def test_service_arms_rng_only_when_jittered(self, system, wgraph):
        plain = make_service(system, wgraph)
        assert plain._retry_rng is None
        jittered = make_service(
            system, wgraph, retry=RetryPolicy(jitter=0.3, seed=5)
        )
        assert jittered._retry_rng is not None
