"""Tests for delta-stepping SSSP."""

import numpy as np
import pytest

from repro.algorithms import (
    split_by_weight,
    sssp,
    sssp_delta_stepping,
    sssp_reference,
    suggest_delta,
)
from repro.datasets import add_weights, road_network
from repro.errors import ReproError
from repro.sparse import COOMatrix
from repro.upmem import SystemConfig
from conftest import random_graph

DPUS = 32


@pytest.fixture
def system():
    return SystemConfig(num_dpus=DPUS)


class TestSplit:
    def test_partitions_edges(self, weighted_graph):
        light, heavy = split_by_weight(weighted_graph, 10.0)
        assert light.nnz + heavy.nnz == weighted_graph.nnz
        if light.nnz:
            assert light.values.max() <= 10.0
        if heavy.nnz:
            assert heavy.values.min() > 10.0

    def test_all_light(self, weighted_graph):
        light, heavy = split_by_weight(weighted_graph, 1e9)
        assert light.nnz == weighted_graph.nnz
        assert heavy.nnz == 0

    def test_suggest_delta_positive(self, weighted_graph):
        assert suggest_delta(weighted_graph) > 0

    def test_suggest_delta_empty(self):
        assert suggest_delta(COOMatrix.empty(4)) == 1.0


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference(self, seed, system):
        graph = random_graph(n=150, avg_degree=4, seed=seed,
                             weights="random")
        run = sssp_delta_stepping(graph, 0, system, DPUS)
        assert np.allclose(run.values, sssp_reference(graph, 0))
        assert run.converged

    @pytest.mark.parametrize("delta", [1.0, 5.0, 50.0, 1e9])
    def test_any_delta_is_exact(self, delta, system):
        graph = random_graph(n=100, avg_degree=4, seed=31,
                             weights="random")
        run = sssp_delta_stepping(graph, 0, system, DPUS, delta=delta)
        assert np.allclose(run.values, sssp_reference(graph, 0))

    def test_agrees_with_bellman_ford(self, system):
        graph = random_graph(n=120, avg_degree=5, seed=37,
                             weights="random")
        a = sssp(graph, 0, system, DPUS)
        b = sssp_delta_stepping(graph, 0, system, DPUS)
        assert np.allclose(a.values, b.values)

    def test_unreachable_stay_inf(self, system):
        graph = COOMatrix.from_edges([(0, 1)], 3, weights=[5])
        run = sssp_delta_stepping(graph, 0, system, 2)
        assert np.isinf(run.values[2])

    def test_all_heavy_edges(self, system):
        """delta below every weight: phase 2 does all the work."""
        graph = random_graph(n=60, avg_degree=3, seed=41,
                             weights="random")
        run = sssp_delta_stepping(graph, 0, system, DPUS, delta=0.5)
        assert np.allclose(run.values, sssp_reference(graph, 0))


class TestWorkEfficiency:
    def test_fewer_relaxations_on_road_networks(self, system):
        """The Meyer-Sanders claim: bucketing avoids premature
        relaxations that frontier Bellman-Ford must redo."""
        rng = np.random.default_rng(2)
        roads = add_weights(road_network(5000, rng=rng), rng=rng,
                            low=1, high=30)
        plain = sssp(roads, 0, system, DPUS)
        bucketed = sssp_delta_stepping(
            roads, 0, system, DPUS, delta=30 * 10
        )
        assert np.allclose(plain.values, bucketed.values)
        assert bucketed.achieved_ops < plain.achieved_ops


class TestValidation:
    def test_rejects_bad_source(self, weighted_graph, system):
        with pytest.raises(ReproError):
            sssp_delta_stepping(weighted_graph, 10_000, system, DPUS)

    def test_rejects_negative_weights(self, system):
        graph = COOMatrix.from_edges([(0, 1)], 2, weights=[-3])
        with pytest.raises(ReproError):
            sssp_delta_stepping(graph, 0, system, 2)

    def test_rejects_bad_delta(self, weighted_graph, system):
        with pytest.raises(ReproError):
            sssp_delta_stepping(weighted_graph, 0, system, DPUS, delta=0.0)

    def test_policy_recorded(self, weighted_graph, system):
        run = sssp_delta_stepping(weighted_graph, 0, system, DPUS,
                                  delta=7.0)
        assert "delta-stepping(7" in run.policy
