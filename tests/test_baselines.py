"""Tests for the CPU and GPU baseline engines."""

import numpy as np
import pytest

from repro.algorithms import bfs_reference, ppr_reference, sssp_reference
from repro.baselines import (
    CPU_SPEC,
    GPU_SPEC,
    TABLE3_ROWS,
    UPMEM_PEAK,
    BaselineRun,
    CpuGraphEngine,
    GpuGraphEngine,
    GpuSpec,
    bfs_trace,
    ppr_trace,
    sssp_trace,
)
from repro.errors import ReproError
from conftest import random_graph


@pytest.fixture
def cpu():
    return CpuGraphEngine()


@pytest.fixture
def gpu():
    return GpuGraphEngine()


class TestWorkloadTraces:
    def test_bfs_trace_matches_reference(self, graph):
        trace = bfs_trace(graph, 0)
        assert np.array_equal(trace.values, bfs_reference(graph, 0))
        assert trace.num_iterations >= 1
        assert trace.iterations[0].frontier_size == 1

    def test_sssp_trace_matches_reference(self, weighted_graph):
        trace = sssp_trace(weighted_graph, 0)
        assert np.allclose(trace.values, sssp_reference(weighted_graph, 0))

    def test_ppr_trace_matches_reference(self, graph):
        trace = ppr_trace(graph, 0)
        assert np.abs(trace.values - ppr_reference(graph, 0)).sum() < 1e-4

    def test_trace_totals(self, graph):
        trace = bfs_trace(graph, 0)
        assert trace.total_frontier_edges > 0
        assert trace.total_useful_ops == 2 * trace.total_frontier_edges

    def test_bad_source(self, graph):
        with pytest.raises(ReproError):
            bfs_trace(graph, 10_000)


class TestCpuEngine:
    def test_bfs_functional(self, cpu, graph):
        run = cpu.bfs(graph, 0, dataset="g")
        assert np.array_equal(run.values, bfs_reference(graph, 0))
        assert run.platform == "cpu"
        assert run.dataset == "g"

    def test_timing_positive_and_energy(self, cpu, graph):
        run = cpu.bfs(graph, 0)
        assert run.seconds > 0
        assert run.energy_j == pytest.approx(
            CPU_SPEC.active_power_w * run.seconds
        )
        assert 0 < run.utilization_pct < 100

    def test_per_iteration_time_scales_with_edges(self, cpu):
        small = cpu.ppr(random_graph(n=200, avg_degree=4, seed=1), 0)
        large = cpu.ppr(random_graph(n=20000, avg_degree=8, seed=1), 0)
        assert (
            large.seconds / large.num_iterations
            > small.seconds / small.num_iterations
        )

    def test_iteration_floor_dominates_tiny_graphs(self, cpu):
        tiny = random_graph(n=30, avg_degree=2, seed=2)
        run = cpu.bfs(tiny, 0)
        assert run.seconds >= run.num_iterations * CPU_SPEC.iteration_floor_s

    def test_sssp_and_ppr(self, cpu, weighted_graph, graph):
        sssp_run = cpu.sssp(weighted_graph, 0)
        assert np.allclose(sssp_run.values, sssp_reference(weighted_graph, 0))
        ppr_run = cpu.ppr(graph, 0)
        assert ppr_run.seconds > 0


class TestGpuEngine:
    def test_bfs_functional(self, gpu, graph):
        run = gpu.bfs(graph, 0)
        assert np.array_equal(run.values, bfs_reference(graph, 0))

    def test_launch_overhead_floor(self, gpu, graph):
        run = gpu.bfs(graph, 0)
        assert run.seconds >= run.num_iterations * GPU_SPEC.launch_overhead_s

    def test_sssp_time_iteration_dominated(self, gpu):
        """Tiny graphs' GPU time ~ iterations * launch overhead (the
        paper's flat ~13 ms SSSP rows)."""
        g = random_graph(n=100, avg_degree=4, seed=5, weights="random")
        run = gpu.sssp(g, 0)
        floor = run.num_iterations * GPU_SPEC.launch_overhead_s
        assert run.seconds == pytest.approx(floor, rel=0.2)

    def test_memory_capacity_enforced(self):
        tiny_gpu = GpuGraphEngine(GpuSpec(memory_bytes=64))
        with pytest.raises(ReproError):
            tiny_gpu.bfs(random_graph(n=200, avg_degree=5), 0)

    def test_energy(self, gpu, graph):
        run = gpu.bfs(graph, 0)
        assert run.energy_j == pytest.approx(
            GPU_SPEC.active_power_w * run.seconds
        )


class TestSpecs:
    def test_table3_values(self):
        assert CPU_SPEC.cores == 10
        assert CPU_SPEC.threads == 12
        assert CPU_SPEC.frequency_hz == pytest.approx(1.8e9)
        assert CPU_SPEC.memory_bandwidth == pytest.approx(83.2e9)
        assert GPU_SPEC.cuda_cores == 2560
        assert GPU_SPEC.frequency_hz == pytest.approx(1.55e9)
        assert GPU_SPEC.memory_bandwidth == pytest.approx(224e9)

    def test_peaks_match_paper(self):
        assert CPU_SPEC.peak_flops == pytest.approx(647.25e9)
        assert GPU_SPEC.peak_flops == pytest.approx(9.1e12)
        assert UPMEM_PEAK.peak_flops == pytest.approx(4.66e9)

    def test_table3_rows(self):
        assert len(TABLE3_ROWS) == 2
        assert TABLE3_ROWS[0][0] == "Intel i7-1265U"


class TestCrossPlatformConsistency:
    def test_all_platforms_same_answer(self, cpu, gpu, graph):
        cpu_run = cpu.bfs(graph, 0)
        gpu_run = gpu.bfs(graph, 0)
        assert np.array_equal(cpu_run.values, gpu_run.values)

    def test_utilization_below_one_percent_on_big_graphs(self, cpu):
        """The paper's CPU/GPU utilization is fractions of a percent."""
        big = random_graph(n=5000, avg_degree=10, seed=8)
        run = cpu.ppr(big, 0)
        assert run.utilization_pct < 1.0
