"""Tests for global PageRank and the ASCII report helpers."""

import numpy as np
import pytest

from repro.algorithms import FixedPolicy, pagerank, pagerank_reference
from repro.errors import ReproError
from repro.experiments import breakdown_chart, fraction_bar, stacked_bar
from repro.sparse import COOMatrix
from repro.types import PhaseBreakdown
from repro.upmem import SystemConfig
from conftest import random_graph

DPUS = 32


@pytest.fixture
def system():
    return SystemConfig(num_dpus=DPUS)


class TestPagerank:
    def test_matches_reference(self, graph, system):
        # float32 kernel arithmetic floors the residual near 1e-7, so the
        # tolerance must sit above that for the convergence flag
        run = pagerank(graph, system, DPUS, tol=1e-6, max_iters=200)
        reference = pagerank_reference(graph)
        assert np.abs(run.values - reference).sum() < 1e-5
        assert run.converged

    def test_matches_networkx(self, system):
        networkx = pytest.importorskip("networkx")
        graph = random_graph(n=70, avg_degree=5, seed=77)
        run = pagerank(graph, system, DPUS, tol=1e-11, max_iters=500)
        nx_graph = networkx.DiGraph()
        coo = graph.to_coo()
        nx_graph.add_nodes_from(range(70))
        for v, u in zip(coo.rows, coo.cols):
            nx_graph.add_edge(int(u), int(v))
        nx_rank = networkx.pagerank(nx_graph, alpha=0.85, tol=1e-12,
                                    max_iter=500)
        for node in range(70):
            assert run.values[node] == pytest.approx(nx_rank[node], abs=2e-3)

    def test_is_distribution(self, graph, system):
        run = pagerank(graph, system, DPUS)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(run.values >= 0)

    def test_dense_input_uses_spmv(self, graph, system):
        run = pagerank(graph, system, DPUS)
        assert all(
            t.kernel_name.startswith("spmv") for t in run.iterations
        )

    def test_spmspv_policy_same_answer(self, graph, system):
        a = pagerank(graph, system, DPUS, policy=FixedPolicy("spmv"))
        b = pagerank(graph, system, DPUS, policy=FixedPolicy("spmspv"))
        assert np.allclose(a.values, b.values, atol=1e-9)

    def test_rejects_bad_inputs(self, graph, system):
        with pytest.raises(ReproError):
            pagerank(graph, system, DPUS, alpha=0.0)
        with pytest.raises(ReproError):
            pagerank(COOMatrix.empty(0), system, 4)

    def test_dangling_handled(self, system):
        graph = COOMatrix.from_edges([(0, 1), (1, 2)], 4)  # 2, 3 dangling
        run = pagerank(graph, system, 4)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-6)


class TestReportHelpers:
    def test_stacked_bar_proportions(self):
        b = PhaseBreakdown(load=1.0, kernel=1.0, retrieve=1.0, merge=1.0)
        bar = stacked_bar(b, width=40)
        assert bar.count("L") == 10
        assert bar.count("K") == 10
        assert len(bar) == 40

    def test_stacked_bar_scaled(self):
        b = PhaseBreakdown(load=1.0)
        bar = stacked_bar(b, width=40, scale_total=2.0)
        assert bar.count("L") == 20
        assert len(bar) == 40

    def test_stacked_bar_zero(self):
        assert stacked_bar(PhaseBreakdown(), width=10) == " " * 10

    def test_stacked_bar_rejects_bad_width(self):
        with pytest.raises(ValueError):
            stacked_bar(PhaseBreakdown(load=1.0), width=0)

    def test_breakdown_chart(self):
        rows = [
            ("one", PhaseBreakdown(load=1.0, kernel=1.0)),
            ("two", PhaseBreakdown(load=0.5)),
        ]
        chart = breakdown_chart(rows, width=20, title="demo")
        assert chart.startswith("demo")
        assert "one" in chart and "two" in chart
        # the smaller bar is visibly shorter
        lines = chart.splitlines()
        assert lines[-1].count("L") < lines[-2].count("L") + lines[-2].count("K")

    def test_breakdown_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            breakdown_chart([])

    def test_fraction_bar(self):
        bar = fraction_bar(
            {"issue": 0.5, "memory": 0.5}, {"issue": "#", "memory": "."},
            width=10,
        )
        assert bar == "#####....."
