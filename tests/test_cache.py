"""Preparation-cache correctness: cached results are bit-identical.

The PR 1 optimization stack (trusted COO construction, vectorized 2-D
planning, plan/kernel caches) is only admissible if it is *invisible*:
``prepare_kernel(..., use_cache=True)`` must yield exactly the results
the uncached path yields, for every kernel variant, and the plan cache's
structural value-rebinding must reproduce a from-scratch plan bit for
bit.  These tests pin that contract down, plus the cache keying rules
(different dtype / DPU count / kernel must miss).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import random_graph
from repro.cache import (
    KERNEL_CACHE,
    PLAN_CACHE,
    PlanCache,
    PreparedKernelCache,
    cache_stats,
    clear_caches,
    matrix_fingerprint,
    rebind_plan_values,
)
from repro.kernels import KERNELS, prepare_kernel
from repro.partition import colwise, grid2d, rowwise
from repro.semiring import PLUS_TIMES
from repro.sparse import COOMatrix, random_sparse_vector
from repro.upmem import SystemConfig

N = 160
NUM_DPUS = 32


@pytest.fixture(autouse=True)
def isolated_caches():
    """Each test starts and ends with empty process-wide caches."""
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def system() -> SystemConfig:
    return SystemConfig(num_dpus=NUM_DPUS)


@pytest.fixture
def matrix() -> COOMatrix:
    g = random_graph(n=N, avg_degree=6, seed=11)
    rng = np.random.default_rng(11)
    return COOMatrix.from_sorted(
        g.rows, g.cols,
        rng.uniform(0.2, 2.0, g.nnz).astype(np.float32), g.shape,
    )


def _assert_results_identical(a, b) -> None:
    assert a.kernel_name == b.kernel_name
    np.testing.assert_array_equal(
        a.output.to_dense(), b.output.to_dense()
    )
    for phase in ("load", "kernel", "retrieve", "merge"):
        assert getattr(a.breakdown, phase) == getattr(b.breakdown, phase)
    assert a.bytes_loaded == b.bytes_loaded
    assert a.bytes_retrieved == b.bytes_retrieved
    assert a.achieved_ops == b.achieved_ops
    assert a.elements_processed == b.elements_processed
    assert a.profile.instructions.counts == b.profile.instructions.counts
    assert a.profile.instructions.dma_bytes == b.profile.instructions.dma_bytes
    assert a.profile.num_dpus == b.profile.num_dpus
    assert (a.profile.active_tasklets_per_dpu
            == b.profile.active_tasklets_per_dpu)


class TestCachedEqualsUncached:
    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_bit_identical_results(self, kernel_name, matrix, system):
        x = random_sparse_vector(
            N, 0.25, rng=np.random.default_rng(5), dtype=np.float32
        )
        cached = prepare_kernel(
            kernel_name, matrix, NUM_DPUS, system, use_cache=True
        )
        fresh = prepare_kernel(
            kernel_name, matrix, NUM_DPUS, system, use_cache=False
        )
        assert cached is not fresh
        _assert_results_identical(
            cached.run(x, PLUS_TIMES), fresh.run(x, PLUS_TIMES)
        )

    def test_second_lookup_returns_same_object(self, matrix, system):
        first = prepare_kernel("spmv-dcoo", matrix, NUM_DPUS, system)
        second = prepare_kernel("spmv-dcoo", matrix, NUM_DPUS, system)
        assert first is second
        assert KERNEL_CACHE.stats.hits == 1
        assert KERNEL_CACHE.stats.misses == 1


class TestCacheKeying:
    def test_different_num_dpus_misses(self, matrix, system):
        prepare_kernel("spmv-dcoo", matrix, NUM_DPUS, system)
        prepare_kernel("spmv-dcoo", matrix, 16, system)
        assert KERNEL_CACHE.stats.misses == 2
        assert KERNEL_CACHE.stats.hits == 0

    def test_different_kernel_misses(self, matrix, system):
        prepare_kernel("spmspv-csc-r", matrix, NUM_DPUS, system)
        prepare_kernel("spmspv-csc-c", matrix, NUM_DPUS, system)
        assert KERNEL_CACHE.stats.misses == 2
        assert KERNEL_CACHE.stats.hits == 0

    def test_different_dtype_misses(self, matrix, system):
        other = COOMatrix.from_sorted(
            matrix.rows, matrix.cols,
            matrix.values.astype(np.float64), matrix.shape,
        )
        prepare_kernel("spmv-coo-nnz", matrix, NUM_DPUS, system)
        prepare_kernel("spmv-coo-nnz", other, NUM_DPUS, system)
        assert KERNEL_CACHE.stats.misses == 2
        assert KERNEL_CACHE.stats.hits == 0

    def test_different_system_misses(self, matrix, system):
        other_system = SystemConfig(num_dpus=NUM_DPUS * 2)
        prepare_kernel("spmv-dcoo", matrix, NUM_DPUS, system)
        prepare_kernel("spmv-dcoo", matrix, NUM_DPUS, other_system)
        assert KERNEL_CACHE.stats.misses == 2
        assert KERNEL_CACHE.stats.hits == 0

    def test_fingerprint_separates_structure_and_values(self, matrix):
        reweighted = COOMatrix.from_sorted(
            matrix.rows, matrix.cols,
            (matrix.values * 2.0).astype(matrix.values.dtype), matrix.shape,
        )
        s1, v1 = matrix_fingerprint(matrix)
        s2, v2 = matrix_fingerprint(reweighted)
        assert s1 == s2        # same sparsity pattern
        assert v1 != v2        # different values

    def test_plan_fmt_is_part_of_the_key(self, matrix):
        cache = PlanCache()
        cache.get(matrix, "rowwise", 8, "coo",
                  lambda: rowwise(matrix, 8, fmt="coo"))
        cache.get(matrix, "rowwise", 8, "csr",
                  lambda: rowwise(matrix, 8, fmt="csr"))
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0


class TestStructuralRebinding:
    """Same sparsity + new values -> rebind instead of replanning."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda m, d: rowwise(m, d, fmt="csr"),
            lambda m, d: colwise(m, d, fmt="csc"),
            lambda m, d: grid2d(m, d, fmt="csc"),
        ],
        ids=["rowwise-csr", "colwise-csc", "grid2d-csc"],
    )
    def test_rebound_plan_matches_fresh_plan(self, matrix, build):
        donor = build(matrix, NUM_DPUS)
        new_values = (matrix.values * 3.5).astype(matrix.values.dtype)
        reweighted = COOMatrix.from_sorted(
            matrix.rows, matrix.cols, new_values, matrix.shape
        )
        rebound = rebind_plan_values(donor, new_values)
        fresh = build(reweighted, NUM_DPUS)
        assert rebound.num_dpus == fresh.num_dpus
        for p_rebound, p_fresh in zip(rebound.partitions, fresh.partitions):
            np.testing.assert_array_equal(
                p_rebound.coo_block.rows, p_fresh.coo_block.rows
            )
            np.testing.assert_array_equal(
                p_rebound.coo_block.cols, p_fresh.coo_block.cols
            )
            np.testing.assert_array_equal(
                p_rebound.coo_block.values, p_fresh.coo_block.values
            )
            assert p_rebound.coo_block.shape == p_fresh.coo_block.shape
            assert p_rebound.row_range == p_fresh.row_range
            assert p_rebound.col_range == p_fresh.col_range

    def test_plan_cache_counts_structural_hit(self, matrix):
        cache = PlanCache()
        cache.get(matrix, "rowwise", 8, "csr",
                  lambda: rowwise(matrix, 8, fmt="csr"))
        reweighted = COOMatrix.from_sorted(
            matrix.rows, matrix.cols,
            (matrix.values + 1.0).astype(matrix.values.dtype), matrix.shape,
        )
        cache.get(reweighted, "rowwise", 8, "csr",
                  lambda: rowwise(reweighted, 8, fmt="csr"))
        assert cache.stats.misses == 1
        assert cache.stats.structural_hits == 1

    def test_structural_reuse_preserves_kernel_output(self, matrix, system):
        """End to end: cached run on a reweighted matrix == fresh run."""
        x = random_sparse_vector(
            N, 0.3, rng=np.random.default_rng(9), dtype=np.float32
        )
        # populate the plan cache with the unit-weight structure
        prepare_kernel("spmspv-csc-2d", matrix, NUM_DPUS, system)
        reweighted = COOMatrix.from_sorted(
            matrix.rows, matrix.cols,
            (matrix.values * 0.5).astype(matrix.values.dtype), matrix.shape,
        )
        cached = prepare_kernel("spmspv-csc-2d", reweighted, NUM_DPUS, system)
        fresh = prepare_kernel(
            "spmspv-csc-2d", reweighted, NUM_DPUS, system, use_cache=False
        )
        assert PLAN_CACHE.stats.structural_hits >= 1
        _assert_results_identical(
            cached.run(x, PLUS_TIMES), fresh.run(x, PLUS_TIMES)
        )


class TestEviction:
    def test_lru_bound_is_enforced(self, system):
        cache = PreparedKernelCache(max_entries=2)
        mats = [random_graph(n=40, seed=s) for s in range(3)]
        for m in mats:
            cache.get("k", m, 8, system, lambda m=m: object())
        # first matrix was evicted -> a re-request misses
        cache.get("k", mats[0], 8, system, lambda: object())
        assert cache.stats.misses == 4

    def test_clear_resets_stats(self, matrix, system):
        prepare_kernel("spmv-dcoo", matrix, NUM_DPUS, system)
        clear_caches()
        stats = cache_stats()
        assert stats["kernel_cache"] == {
            "hits": 0, "structural_hits": 0, "misses": 0, "hit_rate": 0.0,
        }
