"""Tests for the synthetic dataset generators and the Table-2 registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    FIG4_DATASETS,
    TABLE2,
    TABLE4_DATASETS,
    add_weights,
    degree_targeted,
    erdos_renyi,
    get_dataset,
    rmat,
    road_network,
    scale_free,
)
from repro.errors import DatasetError
from repro.sparse import compute_stats
from repro.types import GraphClass


class TestErdosRenyi:
    def test_expected_degree(self):
        g = erdos_renyi(2000, 8.0, rng=np.random.default_rng(0))
        stats = compute_stats(g)
        assert stats.average_degree == pytest.approx(8.0, rel=0.1)
        # uniform degrees: low skew
        assert stats.degree_skew < 1.0

    def test_no_self_loops(self):
        g = erdos_renyi(100, 5.0, rng=np.random.default_rng(1))
        assert np.all(g.rows != g.cols)

    def test_rejects_tiny(self):
        with pytest.raises(DatasetError):
            erdos_renyi(1, 2.0)


class TestRoadNetwork:
    def test_roadnet_signature(self):
        g = road_network(20_000, rng=np.random.default_rng(2))
        stats = compute_stats(g)
        # Table-2 roadNet-TX: avg ~2.78, std ~1.0
        assert 2.0 < stats.average_degree < 3.6
        assert stats.degree_std < 2.0
        assert stats.max_degree <= 4

    def test_bidirectional(self):
        g = road_network(100, rng=np.random.default_rng(3))
        dense = g.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_rejects_tiny(self):
        with pytest.raises(DatasetError):
            road_network(2)


class TestRmat:
    def test_size(self):
        g = rmat(10, edge_factor=8, rng=np.random.default_rng(4))
        assert g.nrows == 1024
        # top-up drives nnz to within ~5% of the Graph500 budget
        assert g.nnz >= 0.9 * 8 * 1024

    def test_heavy_tail(self):
        g = rmat(12, edge_factor=16, rng=np.random.default_rng(5))
        stats = compute_stats(g)
        assert stats.degree_skew > 1.5

    def test_rejects_bad_scale(self):
        with pytest.raises(DatasetError):
            rmat(1)
        with pytest.raises(DatasetError):
            rmat(30)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(DatasetError):
            rmat(8, probabilities=(0.5, 0.5, 0.5, 0.5))


class TestScaleFree:
    def test_skewed_degrees(self):
        g = scale_free(2000, 6.0, rng=np.random.default_rng(6))
        stats = compute_stats(g)
        assert stats.degree_skew > 1.0
        assert stats.max_degree > 10 * stats.average_degree

    def test_rejects_tiny(self):
        with pytest.raises(DatasetError):
            scale_free(2, 2.0)


class TestDegreeTargeted:
    @pytest.mark.parametrize(
        "avg,std", [(6.86, 5.41), (12.27, 41.07), (43.69, 52.41)]
    )
    def test_hits_targets(self, avg, std):
        g = degree_targeted(4000, avg, std, rng=np.random.default_rng(7))
        stats = compute_stats(g)
        assert stats.average_degree == pytest.approx(avg, rel=0.15)
        assert stats.degree_std == pytest.approx(std, rel=0.45)

    def test_zero_std(self):
        g = degree_targeted(500, 4.0, 0.0, rng=np.random.default_rng(8))
        stats = compute_stats(g)
        assert stats.degree_std < 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(DatasetError):
            degree_targeted(1, 3.0, 1.0)
        with pytest.raises(DatasetError):
            degree_targeted(100, 0.0, 1.0)
        with pytest.raises(DatasetError):
            degree_targeted(100, 3.0, -1.0)


class TestAddWeights:
    def test_weights_in_range(self, graph):
        weighted = add_weights(graph, rng=np.random.default_rng(9),
                               low=1, high=10)
        assert weighted.nnz == graph.nnz
        assert weighted.values.min() >= 1
        assert weighted.values.max() < 10

    def test_structure_preserved(self, graph):
        weighted = add_weights(graph, rng=np.random.default_rng(10))
        assert np.array_equal(weighted.rows, graph.rows)
        assert np.array_equal(weighted.cols, graph.cols)

    def test_rejects_bad_range(self, graph):
        with pytest.raises(DatasetError):
            add_weights(graph, low=0, high=5)
        with pytest.raises(DatasetError):
            add_weights(graph, low=5, high=5)


class TestTable2Registry:
    def test_thirteen_datasets(self):
        assert len(TABLE2) == 13

    def test_published_statistics(self):
        a302 = get_dataset("A302")
        assert a302.name == "amazon0302"
        assert a302.edges == 899792
        assert a302.nodes == 262111
        assert a302.avg_degree == pytest.approx(6.86)
        rtx = get_dataset("r-TX")
        assert rtx.graph_class is GraphClass.REGULAR
        assert rtx.family == "road"

    def test_subsets(self):
        assert set(TABLE4_DATASETS) <= set(TABLE2)
        assert set(FIG4_DATASETS) <= set(TABLE2)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("nope")

    def test_generation_deterministic(self):
        spec = get_dataset("e-En")
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        a = spec.generate(scale=0.02, rng=rng_a)
        b = spec.generate(scale=0.02, rng=rng_b)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)

    def test_scale_controls_size(self):
        spec = get_dataset("s-S11")
        small = spec.generate(scale=0.01)
        large = spec.generate(scale=0.05)
        assert large.nrows > small.nrows

    def test_rejects_bad_scale(self):
        with pytest.raises(DatasetError):
            get_dataset("A302").generate(scale=0.0)

    @pytest.mark.parametrize("abbrev", sorted(TABLE2))
    def test_every_dataset_generates(self, abbrev):
        g = TABLE2[abbrev].generate(scale=0.01)
        assert g.nnz > 0
        assert g.nrows >= 64


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000), st.floats(2.0, 20.0), st.floats(0.0, 30.0))
def test_property_degree_targeted_valid(seed, avg, std):
    """degree_targeted always yields a valid loop-free graph."""
    g = degree_targeted(300, avg, std, rng=np.random.default_rng(seed))
    assert np.all(g.rows != g.cols)
    assert g.nrows == 300
