"""Golden-file regression test for the Chrome trace exporter.

A fully deterministic BFS run (explicit edge list, fixed kernel policy,
fixed DPU count) is traced and exported; the result is compared
*structurally* against ``tests/golden/bfs_trace.json``: event sequence
(name, phase, category, lane) must match exactly, timestamps only have
to be well-formed (non-negative, parent-contains-child is already
enforced by the tracer tests).  That keeps the golden stable across
cost-model retunes while still catching any change to what is emitted,
where, and in which order.

Regenerate after an intentional exporter change with::

    PYTHONPATH=src python tests/test_trace_golden.py
"""

import json
import pathlib

import pytest

from repro.algorithms import FixedPolicy, bfs
from repro.observability import chrome_trace_events, observe
from repro.sparse import COOMatrix
from repro.upmem import SystemConfig

pytestmark = pytest.mark.observability

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "bfs_trace.json"

#: A small two-component digraph, written out literally so the trace is
#: identical on every machine (no RNG anywhere in the run).
EDGES = [
    (0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
    (7, 8), (2, 8), (8, 9), (1, 9), (9, 10), (10, 11), (4, 11),
    (12, 13), (13, 14),
]
NUM_NODES = 15
NUM_DPUS = 4


def traced_bfs_doc() -> dict:
    """Run the canonical BFS under tracing; return the Chrome doc."""
    matrix = COOMatrix.from_edges(EDGES, num_nodes=NUM_NODES)
    system = SystemConfig(num_dpus=64)
    with observe(metrics=False,
                 dpus_per_rank=system.dpus_per_rank) as session:
        run = bfs(matrix, 0, system, NUM_DPUS,
                  policy=FixedPolicy("spmspv"))
    assert run.converged
    session.tracer.assert_no_dangling()
    return chrome_trace_events(session.tracer)


def structural_view(doc: dict) -> dict:
    """Reduce a Chrome doc to its cost-model-independent structure."""
    events = []
    for event in doc["traceEvents"]:
        if event["ph"] == "M":  # metadata handled separately (unordered)
            continue
        events.append({
            "name": event["name"],
            "ph": event["ph"],
            "cat": event.get("cat", ""),
            "pid": event["pid"],
            "tid": event["tid"],
        })
    metadata = sorted(
        (e["name"], e["pid"], e.get("tid", -1),
         e.get("args", {}).get("name", e.get("args", {}).get("sort_index")))
        for e in doc["traceEvents"] if e["ph"] == "M"
    )
    return {"events": events, "metadata": metadata}


def test_golden_trace_structure_matches():
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/test_trace_golden.py`"
    )
    golden = structural_view(json.loads(GOLDEN_PATH.read_text()))
    current = structural_view(traced_bfs_doc())
    assert current["metadata"] == golden["metadata"]
    assert len(current["events"]) == len(golden["events"])
    for i, (got, want) in enumerate(
        zip(current["events"], golden["events"])
    ):
        assert got == want, f"event {i} diverged: {got} != {want}"


def test_golden_trace_timestamps_are_wellformed():
    doc = traced_bfs_doc()
    for event in doc["traceEvents"]:
        if event["ph"] != "X":
            continue
        assert event["ts"] >= 0
        assert event["dur"] >= 0


def test_golden_run_is_deterministic():
    """Two fresh runs emit byte-identical traces (not just structure)."""
    assert json.dumps(traced_bfs_doc(), sort_keys=True) == \
        json.dumps(traced_bfs_doc(), sort_keys=True)


def test_every_dpu_lane_appears_in_golden():
    view = structural_view(traced_bfs_doc())
    exec_lanes = {e["tid"] for e in view["events"] if e["name"] == "exec"}
    assert exec_lanes == set(range(NUM_DPUS))


if __name__ == "__main__":  # regeneration entry point
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(traced_bfs_doc(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
