"""Differential suite for the shard-scheduled runtime (PR 6 tentpole).

The contract: **overlapped mode changes only the simulated timeline's
internal schedule, never a result and never a reported number.**  Every
algorithm, every value array, every phase breakdown, every cycle and
transfer total must be bit-identical between ``REPRO_SHARD_EXEC=lockstep``
(the legacy phase-barrier model) and the default overlapped schedule —
including under fault injection and across a checkpoint crash/resume that
switches modes mid-run.

Plus unit coverage of the three new pieces: rank-level
:class:`~repro.partition.ShardPlan` decomposition,
:class:`~repro.upmem.ShardScheduler` pipelining (issue-gap serialization,
gather recurrence, degraded-mode slot reclaim) and the
:class:`~repro.upmem.ShardTimeline` invariants.
"""


import numpy as np
import pytest

from repro.algorithms import (
    betweenness_centrality,
    bfs,
    connected_components,
    multi_source_bfs,
    pagerank,
    ppr,
    sssp,
    sssp_delta_stepping,
)
from repro.cache import clear_caches
from repro.checkpoint import CheckpointConfig, MemoryCheckpointStore
from repro.checkpoint.chaos import CrashSchedule, SimulatedCrash
from repro.datasets import add_weights, get_dataset
from repro.errors import UpmemError
from repro.faults import FaultPlan
from repro.partition import ShardPlan, dcoo, rowwise
from repro.semiring import PLUS_TIMES
from repro.upmem import (
    ShardScheduler,
    ShardTimeline,
    set_shard_mode,
    shard_mode,
    shard_mode_override,
)
from repro.upmem.config import SystemConfig
from repro.upmem.sharding import ENV_VAR

NUM_DPUS = 256  # 4 ranks: enough shards to pipeline, small enough to be fast


@pytest.fixture(scope="module")
def graph():
    spec = get_dataset("A302")
    return spec.generate(scale=0.05, rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def weighted(graph):
    return add_weights(graph, rng=np.random.default_rng(11))


@pytest.fixture(scope="module")
def system():
    return SystemConfig(num_dpus=NUM_DPUS)


@pytest.fixture(autouse=True)
def _clean_mode():
    set_shard_mode(None)
    yield
    set_shard_mode(None)


def _runs_equal(a, b):
    """Bit-exact equality of two AlgorithmRuns' reported numbers."""
    assert a.values.dtype == b.values.dtype
    assert a.values.tobytes() == b.values.tobytes()
    assert a.num_iterations == b.num_iterations
    assert a.converged == b.converged
    assert a.breakdown.as_dict() == b.breakdown.as_dict()
    assert a.energy.total_j == b.energy.total_j
    for ta, tb in zip(a.iterations, b.iterations):
        assert ta.breakdown.as_dict() == tb.breakdown.as_dict()
        assert ta.kernel_name == tb.kernel_name


# ---------------------------------------------------------------------------
# mode selection
# ---------------------------------------------------------------------------


class TestShardMode:
    def test_default_is_overlapped(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert shard_mode() == "overlapped"

    def test_env_var_selects_lockstep(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "lockstep")
        assert shard_mode() == "lockstep"

    def test_env_var_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "pipelined")
        with pytest.raises(UpmemError):
            shard_mode()

    def test_set_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "lockstep")
        set_shard_mode("overlapped")
        assert shard_mode() == "overlapped"
        set_shard_mode(None)
        assert shard_mode() == "lockstep"

    def test_override_contextmanager_restores(self):
        set_shard_mode("overlapped")
        with shard_mode_override("lockstep"):
            assert shard_mode() == "lockstep"
        assert shard_mode() == "overlapped"

    def test_override_none_is_noop(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with shard_mode_override(None):
            assert shard_mode() == "overlapped"

    def test_set_rejects_unknown(self):
        with pytest.raises(UpmemError):
            set_shard_mode("barrier")


# ---------------------------------------------------------------------------
# ShardPlan decomposition
# ---------------------------------------------------------------------------


class TestShardPlans:
    def test_rank_decomposition_covers_all_dpus(self, graph, system):
        plan = rowwise(graph, NUM_DPUS)
        shards = plan.shard_plans(system.dpus_per_rank)
        assert len(shards) == NUM_DPUS // system.dpus_per_rank
        assert shards[0].dpu_start == 0
        assert shards[-1].dpu_stop == NUM_DPUS
        for a, b in zip(shards, shards[1:]):
            assert a.dpu_stop == b.dpu_start
        assert sum(s.num_dpus for s in shards) == NUM_DPUS

    def test_shard_nnz_partitions_total(self, graph):
        plan = rowwise(graph, NUM_DPUS)
        shards = plan.shard_plans(64)
        assert sum(s.nnz for s in shards) == graph.nnz

    def test_shard_row_ranges_nest_in_plan(self, graph):
        plan = rowwise(graph, NUM_DPUS)
        for shard in plan.shard_plans(64):
            assert isinstance(shard, ShardPlan)
            lo, hi = shard.row_range
            assert 0 <= lo <= hi <= graph.nrows
            assert shard.out_lens.shape == (shard.num_dpus,)
            assert shard.nnz_counts.shape == (shard.num_dpus,)

    def test_partial_last_shard(self, graph):
        plan = rowwise(graph, 96)
        shards = plan.shard_plans(64)
        assert [s.num_dpus for s in shards] == [64, 32]

    def test_2d_plan_shards(self, graph):
        plan = dcoo(graph, NUM_DPUS)
        shards = plan.shard_plans(64)
        assert sum(s.num_dpus for s in shards) == NUM_DPUS
        assert sum(s.nnz for s in shards) == graph.nnz


# ---------------------------------------------------------------------------
# ShardScheduler timeline model
# ---------------------------------------------------------------------------


class TestShardScheduler:
    def _timeline(self, system, num_shards=4, skipped=None, exec_s=1e-3):
        sched = ShardScheduler(system)
        bounds = sched.shard_bounds(num_shards * system.dpus_per_rank)
        scatter = np.full(num_shards, 2e-4)
        gather = np.full(num_shards, 3e-4)
        return sched, sched.timeline(
            bounds, scatter, exec_s, gather,
            merge_s=1e-4, lockstep_s=5e-3, skipped=skipped,
        )

    def test_bounds_are_rank_aligned(self, system):
        sched = ShardScheduler(system)
        bounds = sched.shard_bounds(200)
        assert bounds.tolist() == [0, 64, 128, 192, 200]

    def test_scatter_issue_serializes_by_gap(self, system):
        _, tl = self._timeline(system)
        gap = system.transfer.async_issue_gap_s
        starts = tl.scatter_start
        assert np.allclose(np.diff(starts), gap)
        assert starts[0] == 0.0

    def test_gather_never_precedes_exec(self, system):
        _, tl = self._timeline(system)
        assert (tl.gather_start >= tl.exec_end - 1e-18).all()
        assert (tl.gather_end >= tl.gather_start).all()

    def test_gather_issue_recurrence_monotone(self, system):
        _, tl = self._timeline(system)
        gap = system.transfer.async_issue_gap_s
        assert (np.diff(tl.gather_start) >= gap - 1e-18).all()

    def test_makespan_includes_merge(self, system):
        _, tl = self._timeline(system)
        assert tl.makespan_s == pytest.approx(float(tl.gather_end.max()) + 1e-4)
        assert tl.overlap_saved_s == pytest.approx(5e-3 - tl.makespan_s)

    def test_skipped_shards_zeroed_and_slot_reclaimed(self, system):
        skipped = np.array([False, True, False, False])
        _, tl = self._timeline(system, skipped=skipped)
        assert tl.scatter_start[1] == tl.scatter_end[1]
        assert tl.exec_end[1] == tl.scatter_end[1]
        assert tl.gather_end[1] == tl.gather_start[1]
        # shard 2 inherits issue slot 1: its scatter starts one gap after
        # shard 0, not two
        gap = system.transfer.async_issue_gap_s
        assert tl.scatter_start[2] == pytest.approx(gap)

    def test_reschedule_preserves_lockstep_total(self, system):
        sched, tl = self._timeline(system)
        skipped = np.array([False, False, True, False])
        degraded = sched.reschedule(tl, skipped)
        assert degraded.lockstep_s == tl.lockstep_s
        assert degraded.skipped is not None and degraded.skipped[2]
        assert degraded.makespan_s <= tl.makespan_s + 1e-18

    def test_timeline_is_shard_timeline(self, system):
        _, tl = self._timeline(system)
        assert isinstance(tl, ShardTimeline)
        assert tl.num_shards == 4

    def test_shard_bounds_memoized(self, system):
        sched = ShardScheduler(system)
        bounds = sched.shard_bounds(200)
        assert sched.shard_bounds(200) is bounds
        assert not bounds.flags.writeable
        assert sched.shard_bounds(128) is not bounds

    def test_reschedule_memoized_per_timeline_and_mask(self, system):
        """Degraded mode replays the same timeline shapes every launch;
        identical (legs, skip-mask) inputs must be cache hits, not
        recomputations (the pre-memo behavior)."""
        sched, tl = self._timeline(system)
        skipped = np.array([False, True, False, False])
        first = sched.reschedule(tl, skipped)
        assert (sched.reschedule_hits, sched.reschedule_misses) == (0, 1)
        assert sched.reschedule(tl, skipped) is first
        assert (sched.reschedule_hits, sched.reschedule_misses) == (1, 1)
        # a different skip mask is a genuinely different schedule
        other = sched.reschedule(tl, np.array([True, False, False, False]))
        assert other is not first
        assert sched.reschedule_misses == 2
        # cached answer equals a fresh scheduler's computation
        fresh = ShardScheduler(system).reschedule(tl, skipped)
        assert np.allclose(first.gather_end, fresh.gather_end)
        assert first.makespan_s == fresh.makespan_s

    def test_degraded_executor_reuses_reschedule_cache(self, system, graph):
        """A persistent rank loss reschedules every iteration with the
        same skip mask; the executor-attached scheduler must serve those
        from cache."""
        from repro.faults.resilient import FaultTolerantExecutor
        from repro.kernels.spmv import prepare_spmv_1d
        from repro.upmem.sharding import shard_mode_override

        executor = FaultTolerantExecutor(FaultPlan.disabled(), system, NUM_DPUS)
        for i in range(system.dpus_per_rank):  # rank 0 fully lost
            executor.rset._quarantine(i)
        with shard_mode_override("overlapped"):
            kernel = prepare_spmv_1d(graph, NUM_DPUS, system)
            for _ in range(4):
                executor.run(kernel, np.ones(graph.shape[1]), PLUS_TIMES)
        sched = getattr(kernel, "_shard_scheduler", None) \
            or executor._fallback_scheduler
        assert sched is not None
        assert sched.reschedule_hits >= 1
        assert sched.reschedule_misses >= 1


# ---------------------------------------------------------------------------
# kernel attachment
# ---------------------------------------------------------------------------


class TestKernelAttachment:
    def test_overlapped_attaches_timeline(self, graph, system):
        from repro.kernels.spmv import prepare_spmv_1d

        clear_caches()
        set_shard_mode("overlapped")
        kernel = prepare_spmv_1d(graph, NUM_DPUS, system)
        result = kernel.run(np.ones(graph.shape[1]), PLUS_TIMES)
        tl = result.shard_timeline
        assert tl is not None
        assert tl.num_shards == NUM_DPUS // system.dpus_per_rank
        # the lockstep currency is the reported breakdown, untouched
        assert tl.lockstep_s == pytest.approx(result.breakdown.total)

    def test_lockstep_attaches_nothing(self, graph, system):
        from repro.kernels.spmv import prepare_spmv_1d

        clear_caches()
        set_shard_mode("lockstep")
        kernel = prepare_spmv_1d(graph, NUM_DPUS, system)
        result = kernel.run(np.ones(graph.shape[1]), PLUS_TIMES)
        assert result.shard_timeline is None

    def test_single_rank_attaches_nothing(self, graph):
        from repro.kernels.spmv import prepare_spmv_1d

        clear_caches()
        set_shard_mode("overlapped")
        system = SystemConfig(num_dpus=64)
        kernel = prepare_spmv_1d(graph, 64, system)
        result = kernel.run(np.ones(graph.shape[1]), PLUS_TIMES)
        assert result.shard_timeline is None

    def test_overlap_overhead_bounded_by_issue_gaps(self, graph, system):
        """Below the aggregate-bandwidth caps the per-shard legs equal the
        lockstep legs exactly, so the pipeline's only cost is the serial
        async-issue gaps — the makespan never exceeds the barrier total
        by more than one gap per shard pair (scatter + gather issues)."""
        from repro.kernels.spmv import prepare_spmv_1d, prepare_spmv_2d
        from repro.kernels.spmv_ell import prepare_spmv_ell

        clear_caches()
        set_shard_mode("overlapped")
        x = np.ones(graph.shape[1])
        gap = system.transfer.async_issue_gap_s
        for prep in (prepare_spmv_1d, prepare_spmv_2d, prepare_spmv_ell):
            tl = prep(graph, NUM_DPUS, system).run(x, PLUS_TIMES).shard_timeline
            assert tl is not None
            bound = tl.lockstep_s + 2 * tl.num_shards * gap
            assert tl.makespan_s <= bound + 1e-12, prep.__name__

    def test_overlap_saves_time_when_aggregate_bw_caps_bind(self, graph):
        """At full machine scale the aggregate DPU->host peak (4.7 GB/s)
        is slower than 40 concurrent per-rank gathers, so the pipelined
        schedule genuinely hides transfer time."""
        from repro.kernels.spmv import prepare_spmv_1d, prepare_spmv_2d

        clear_caches()
        set_shard_mode("overlapped")
        system = SystemConfig(num_dpus=2560)
        x = np.ones(graph.shape[1])
        for prep in (prepare_spmv_1d, prepare_spmv_2d):
            tl = prep(graph, 2560, system).run(x, PLUS_TIMES).shard_timeline
            assert tl is not None
            assert tl.overlap_saved_s > 0, prep.__name__


# ---------------------------------------------------------------------------
# the differential contract: every algorithm, both modes, bit-identical
# ---------------------------------------------------------------------------


def _run_algorithm(name, graph, weighted, system, mode):
    clear_caches()
    kwargs = dict(shard_exec=mode)
    if name == "bfs":
        return bfs(graph, 0, system, NUM_DPUS, **kwargs)
    if name == "sssp":
        return sssp(weighted, 0, system, NUM_DPUS, **kwargs)
    if name == "ppr":
        return ppr(graph, 3, system, NUM_DPUS, **kwargs)
    if name == "pagerank":
        return pagerank(graph, system, NUM_DPUS, **kwargs)
    if name == "cc":
        return connected_components(graph, system, NUM_DPUS, **kwargs)
    if name == "delta_stepping":
        return sssp_delta_stepping(weighted, 0, system, NUM_DPUS, **kwargs)
    if name == "msbfs":
        return multi_source_bfs(graph, [0, 5, 9], system, NUM_DPUS, **kwargs)
    if name == "bc":
        return betweenness_centrality(graph, [0, 5], system, NUM_DPUS, **kwargs)
    raise AssertionError(name)


ALGORITHMS = (
    "bfs", "sssp", "ppr", "pagerank", "cc", "delta_stepping", "msbfs", "bc",
)


class TestDifferentialAllAlgorithms:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_overlapped_matches_lockstep(self, name, graph, weighted, system):
        overlapped = _run_algorithm(name, graph, weighted, system, "overlapped")
        lockstep = _run_algorithm(name, graph, weighted, system, "lockstep")
        _runs_equal(overlapped, lockstep)

    def test_overlapped_timeline_rides_iterations(self, graph, system):
        """Overlapped mode is pure observability: the timelines exist on
        the per-iteration kernel results, the totals stay lockstep."""
        from repro.observability import (
            ObservabilitySession,
            activate,
            deactivate,
        )

        clear_caches()
        session = activate(ObservabilitySession(
            trace=True, metrics=True, dpus_per_rank=system.dpus_per_rank,
        ))
        try:
            bfs(graph, 0, system, NUM_DPUS, shard_exec="overlapped")
            cats = {e.cat for e in session.tracer.events}
            assert "shard" in cats
            counters = session.metrics.snapshot(include_caches=False).counters
            assert counters.get("shard.makespan", 0.0) > 0.0
        finally:
            deactivate()


class TestDifferentialUnderFaults:
    def test_bfs_with_faults_bit_identical(self, graph, weighted, system):
        plan = FaultPlan.uniform(0.02, seed=5)
        runs = {}
        for mode in ("overlapped", "lockstep"):
            clear_caches()
            runs[mode] = bfs(
                graph, 0, system, NUM_DPUS,
                fault_plan=plan, shard_exec=mode,
            )
        _runs_equal(runs["overlapped"], runs["lockstep"])
        # the *fault schedule* is also identical: same events, same
        # recovery accounting in both modes
        assert (runs["overlapped"].fault_log.summary()
                == runs["lockstep"].fault_log.summary())

    def test_degraded_rank_reclaims_issue_slots(self, graph, system):
        """Quarantining every DPU of a rank drops its shard from the
        overlapped schedule (skipped mask via the resilient runtime)."""
        from repro.faults.resilient import FaultTolerantExecutor

        clear_caches()
        set_shard_mode("overlapped")
        plan = FaultPlan.uniform(0.0, seed=1)
        executor = FaultTolerantExecutor(plan, system, NUM_DPUS)
        for dpu in range(64, 128):  # quarantine rank 1 wholesale
            executor.rset.dpus[dpu].quarantine()

        from repro.kernels.spmv import prepare_spmv_1d

        kernel = prepare_spmv_1d(graph, NUM_DPUS, system)
        result = executor.run(kernel, np.ones(graph.shape[1]), PLUS_TIMES)
        tl = result.shard_timeline
        assert tl is not None and tl.skipped is not None
        assert tl.skipped.tolist() == [False, True, False, False]
        assert tl.scatter_start[1] == tl.scatter_end[1]  # zero-duration legs


class TestDifferentialAcrossCheckpointResume:
    @pytest.mark.parametrize(
        "crash_mode,resume_mode",
        [("overlapped", "lockstep"), ("lockstep", "overlapped")],
    )
    def test_mode_switch_across_resume(
        self, crash_mode, resume_mode, graph, system
    ):
        """Crash mid-shard-sequence in one mode, resume in the other:
        checkpointed state is schedule-independent, so the stitched run
        still reproduces the single-mode answer bit-for-bit."""
        clear_caches()
        reference = bfs(graph, 0, system, NUM_DPUS, shard_exec="lockstep")

        store = MemoryCheckpointStore()
        schedule = CrashSchedule(crash_iterations=[2])
        clear_caches()
        with pytest.raises(SimulatedCrash):
            bfs(
                graph, 0, system, NUM_DPUS, shard_exec=crash_mode,
                checkpoint=CheckpointConfig(
                    store=store, crash_schedule=schedule
                ),
            )
        resumed = bfs(
            graph, 0, system, NUM_DPUS, shard_exec=resume_mode,
            checkpoint=CheckpointConfig(store=store),
        )
        assert resumed.checkpoint["restore_count"] == 1
        assert resumed.values.tobytes() == reference.values.tobytes()
        assert resumed.converged == reference.converged
