"""Guard the examples against bitrot."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "BFS from vertex 0 reached" in result.stdout
    assert "totals:" in result.stdout


def test_custom_semiring_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "custom_semiring.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "most-reliable paths" in result.stdout
    assert "pipeline timeline" in result.stdout
