"""Tests for the cycle-level revolver-pipeline simulator."""

import numpy as np
import pytest

from repro.errors import UpmemError
from repro.upmem import (
    MUTEX_UNLOCK,
    DpuConfig,
    Instruction,
    InstructionProfile,
    InstrClass,
    RevolverPipeline,
    synthesize_stream,
)

ARITH = Instruction(InstrClass.ARITH)


def make_pipeline(**overrides) -> RevolverPipeline:
    return RevolverPipeline(DpuConfig(**overrides))


class TestSingleTasklet:
    def test_dispatch_gap_paces_one_thread(self):
        """One tasklet issues an instruction every `gap` cycles."""
        stats = make_pipeline().run([[ARITH] * 10])
        # 10 instructions spaced 11 cycles: ~9 * 11 + 1 cycles
        assert stats.instructions_issued == 10
        assert 9 * 11 + 1 <= stats.cycles <= 9 * 11 + 12
        assert stats.issue_cycles == 10
        assert stats.idle_revolver > 0

    def test_empty_stream_list_rejected(self):
        with pytest.raises(UpmemError):
            make_pipeline().run([])

    def test_too_many_tasklets_rejected(self):
        with pytest.raises(UpmemError):
            make_pipeline().run([[ARITH]] * 25)


class TestMultiTasklet:
    def test_interleaving_hides_gap(self):
        """11+ tasklets can fill every cycle despite the dispatch gap."""
        streams = [[ARITH] * 20 for _ in range(11)]
        stats = make_pipeline().run(streams)
        assert stats.issue_fraction > 0.9

    def test_few_tasklets_leave_idle(self):
        streams = [[ARITH] * 20 for _ in range(2)]
        stats = make_pipeline().run(streams)
        assert stats.issue_fraction < 0.3
        assert stats.idle_revolver > stats.idle_memory

    def test_throughput_scales_with_tasklets(self):
        cycles = []
        for t in (1, 4, 11):
            streams = [[ARITH] * 30 for _ in range(t)]
            cycles.append(make_pipeline().run(streams).cycles)
        # more tasklets, same per-tasklet work -> not much slower overall
        assert cycles[2] < cycles[0] * 2

    def test_all_instructions_issue(self):
        streams = [[ARITH] * 7 for _ in range(5)]
        stats = make_pipeline().run(streams)
        assert stats.instructions_issued == 35


class TestDma:
    def test_blocking_dma_creates_memory_idle(self):
        dma = Instruction(InstrClass.DMA, dma_bytes=2048)
        stats = make_pipeline().run([[dma, ARITH, ARITH]])
        assert stats.idle_memory > 500  # ~77 + 1024 cycles blocked

    def test_non_blocking_dma_removes_memory_idle(self):
        dma = Instruction(InstrClass.DMA, dma_bytes=2048)
        stream = [dma] + [ARITH] * 5
        blocking = make_pipeline().run([stream])
        non_blocking = make_pipeline(blocking_dma=False).run([stream])
        assert non_blocking.cycles < blocking.cycles
        assert non_blocking.idle_memory == 0

    def test_dma_overlapped_by_other_tasklets(self):
        dma_stream = [Instruction(InstrClass.DMA, dma_bytes=1024)]
        busy = [ARITH] * 50
        stats = make_pipeline().run([dma_stream, busy, busy, busy])
        # other tasklets keep issuing while one waits on DMA
        assert stats.issue_fraction > 0.25


class TestMutex:
    def test_mutex_serializes(self):
        lock = Instruction(InstrClass.SYNC, mutex_id=0)
        unlock = Instruction(InstrClass.SYNC, mutex_id=MUTEX_UNLOCK)
        critical = [lock, ARITH, unlock]
        stats_shared = make_pipeline().run([critical * 5, critical * 5])
        # distinct mutexes: no serialization
        lock1 = Instruction(InstrClass.SYNC, mutex_id=1)
        stats_disjoint = make_pipeline().run(
            [critical * 5, [lock1, ARITH, unlock] * 5]
        )
        assert stats_shared.cycles >= stats_disjoint.cycles

    def test_mutex_eventually_released(self):
        lock = Instruction(InstrClass.SYNC, mutex_id=0)
        unlock = Instruction(InstrClass.SYNC, mutex_id=MUTEX_UNLOCK)
        streams = [[lock, ARITH, unlock] for _ in range(6)]
        stats = make_pipeline().run(streams)
        assert stats.instructions_issued == 18  # nobody deadlocks


class TestRfHazard:
    def test_rf_pair_costs_extra_cycle(self):
        paired = [Instruction(InstrClass.ARITH, rf_pair=True)] * 10
        stats = make_pipeline().run([paired])
        assert stats.idle_rf == 10

    def test_rf_hazards_disableable(self):
        paired = [Instruction(InstrClass.ARITH, rf_pair=True)] * 10
        stats = make_pipeline(rf_structural_hazards=False).run([paired])
        assert stats.idle_rf == 0


class TestStats:
    def test_breakdown_sums_to_one(self):
        streams = [
            [ARITH, Instruction(InstrClass.DMA, dma_bytes=256), ARITH] * 4
            for _ in range(3)
        ]
        stats = make_pipeline().run(streams)
        fractions = stats.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_avg_active_threads_bounded(self):
        streams = [[ARITH] * 10 for _ in range(6)]
        stats = make_pipeline().run(streams)
        assert 0 < stats.avg_active_threads <= 6

    def test_ipc_bounded_by_one(self):
        streams = [[ARITH] * 50 for _ in range(12)]
        stats = make_pipeline().run(streams)
        assert 0 < stats.ipc <= 1.0


class TestSynthesizeStream:
    def _profile(self):
        p = InstructionProfile()
        p.add(InstrClass.ARITH, 100)
        p.add(InstrClass.LOADSTORE, 60)
        p.add(InstrClass.CONTROL, 30)
        p.add(InstrClass.MUL32, 10)
        p.add_dma(4096, 4)
        p.add(InstrClass.SYNC, 12)
        p.mutex_acquires = 6
        return p

    def test_mix_preserved(self):
        profile = self._profile()
        stream = synthesize_stream(profile, seed=1)
        counts = {}
        for instr in stream:
            counts[instr.klass] = counts.get(instr.klass, 0) + 1
        # primary classes land close to the requested counts (expansion
        # adds extra micro-ops of the same class for MUL32)
        assert counts[InstrClass.ARITH] == pytest.approx(100, abs=5)
        assert counts[InstrClass.LOADSTORE] == pytest.approx(60, abs=5)
        assert counts[InstrClass.DMA] == 4
        assert counts[InstrClass.MUL32] == 10 * 6  # expanded

    def test_dma_bytes_distributed(self):
        stream = synthesize_stream(self._profile(), seed=2)
        dma_bytes = sum(i.dma_bytes for i in stream if i.klass is InstrClass.DMA)
        assert dma_bytes == 4096

    def test_locks_are_paired(self):
        stream = synthesize_stream(self._profile(), seed=3)
        locks = sum(
            1 for i in stream
            if i.klass is InstrClass.SYNC and i.mutex_id >= 0
        )
        unlocks = sum(
            1 for i in stream
            if i.klass is InstrClass.SYNC and i.mutex_id == MUTEX_UNLOCK
        )
        assert locks == unlocks == 6

    def test_cap_respected(self):
        profile = InstructionProfile()
        profile.add(InstrClass.ARITH, 10_000_000)
        stream = synthesize_stream(profile, max_instructions=5000)
        assert len(stream) <= 5500

    def test_empty_profile(self):
        assert synthesize_stream(InstructionProfile()) == []

    def test_stream_runs_through_pipeline(self):
        stream = synthesize_stream(self._profile(), seed=4)
        stats = make_pipeline().run([stream])
        assert stats.instructions_issued == len(stream)
