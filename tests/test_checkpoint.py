"""Unit tests for the checkpoint/restore subsystem (PR 5 tentpole).

Covers the record framing (magic / version / length / CRC rejection),
the pickle-free codec's exactness, policies, both store backends, the
atomic-write helper, the FaultLog round-trip regression (satellite),
kernel-policy state capture, restore-time cache behaviour (satellite)
and the driver-level unrecoverable-fault rebuild path.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import random_graph
from repro.adaptive import AdaptiveSwitchPolicy
from repro.algorithms import bfs, sssp
from repro.algorithms.base import FixedPolicy, MatvecDriver
from repro.cache import cache_stats, clear_caches
from repro.checkpoint import (
    MAGIC,
    VERSION,
    CheckpointConfig,
    CheckpointPolicy,
    CrashSchedule,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    SimulatedCrash,
    decode,
    encode,
    open_checkpoint,
    pack_record,
    unpack_record,
)
from repro.checkpoint.record import HEADER
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    UnrecoverableFaultError,
)
from repro.faults import FaultLog, FaultPlan
from repro.ioutil import atomic_write_json, atomic_writer
from repro.upmem import SystemConfig

pytestmark = pytest.mark.checkpoint


@pytest.fixture
def graph():
    return random_graph(n=96, avg_degree=4.0, seed=3)


@pytest.fixture
def system():
    return SystemConfig(num_dpus=64)


# -- record framing -----------------------------------------------------------

class TestRecordFraming:
    def test_round_trip(self):
        payload = b"the quick brown fox" * 100
        assert unpack_record(pack_record(payload)) == payload

    def test_empty_payload(self):
        assert unpack_record(pack_record(b"")) == b""

    def test_header_magic_and_version(self):
        blob = pack_record(b"x")
        magic, version, _flags, length, _crc = HEADER.unpack_from(blob)
        assert magic == MAGIC
        assert version == VERSION
        assert length == 1

    def test_truncated_header_rejected(self):
        with pytest.raises(CheckpointCorruptError):
            unpack_record(b"APIM")

    def test_bad_magic_rejected(self):
        blob = bytearray(pack_record(b"payload"))
        blob[0] ^= 0xFF
        with pytest.raises(CheckpointCorruptError, match="magic"):
            unpack_record(bytes(blob))

    def test_future_version_rejected(self):
        blob = bytearray(pack_record(b"payload"))
        blob[8] = 0xFF  # version word (little-endian, after 8-byte magic)
        with pytest.raises(CheckpointCorruptError, match="version"):
            unpack_record(bytes(blob))

    def test_torn_record_rejected(self):
        blob = pack_record(b"a" * 1000)
        for fraction in (0.1, 0.5, 0.99):
            keep = int(len(blob) * fraction)
            with pytest.raises(CheckpointCorruptError):
                unpack_record(blob[:keep])

    def test_bit_rot_rejected(self):
        blob = bytearray(pack_record(b"b" * 256))
        blob[-1] ^= 0x01  # flip a payload bit
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            unpack_record(bytes(blob))


# -- codec --------------------------------------------------------------------

class TestCodec:
    def test_scalar_tree_round_trip(self):
        tree = {
            "a": 1, "b": -2.5, "c": "text", "d": None, "e": True,
            "nested": {"list": [1, 2.0, "three", False, None]},
        }
        assert decode(encode(tree)) == tree

    def test_array_bit_identity(self):
        rng = np.random.default_rng(0)
        arrays = {
            "f64": rng.standard_normal(257),
            "f32": rng.standard_normal(64).astype(np.float32),
            "i64": rng.integers(-(2**62), 2**62, 33),
            "i32": rng.integers(-100, 100, 5).astype(np.int32),
            "bool": rng.random(77) > 0.5,
            "with_inf": np.array([np.inf, -np.inf, 0.0, np.nan]),
            "matrix": rng.standard_normal((13, 7)),
            "empty": np.empty(0, dtype=np.int64),
        }
        out = decode(encode(arrays))
        for key, array in arrays.items():
            assert out[key].dtype == array.dtype, key
            assert out[key].shape == array.shape, key
            assert out[key].tobytes() == array.tobytes(), key

    def test_pcg64_state_round_trip(self):
        rng = np.random.default_rng(12345)
        rng.random(100)
        state = rng.bit_generator.state  # holds 128-bit ints
        restored = decode(encode(state))
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = restored
        assert np.array_equal(rng.random(50), fresh.random(50))

    def test_float_exactness(self):
        values = [0.1, 1e-300, 1.7976931348623157e308, -0.0, 2**-1074]
        out = decode(encode({"v": values}))
        for a, b in zip(values, out["v"]):
            assert np.float64(a).tobytes() == np.float64(b).tobytes()

    def test_object_dtype_rejected(self):
        with pytest.raises(CheckpointError):
            encode({"bad": np.array([object()], dtype=object)})

    def test_non_string_keys_rejected(self):
        with pytest.raises(CheckpointError):
            encode({1: "no"})

    def test_reserved_key_rejected(self):
        with pytest.raises(CheckpointError):
            encode({"__nd__": [0, "<f8", [1]]})

    def test_arbitrary_object_rejected(self):
        with pytest.raises(CheckpointError):
            encode({"fn": lambda: None})

    def test_truncated_payload_rejected(self):
        payload = encode({"a": np.arange(100)})
        with pytest.raises(CheckpointCorruptError):
            decode(payload[: len(payload) // 2])
        with pytest.raises(CheckpointCorruptError):
            decode(b"\x01")

    def test_deterministic(self):
        tree = {"x": np.arange(10), "y": [1.5, "z"], "n": 42}
        assert encode(tree) == encode(tree)


# -- policy -------------------------------------------------------------------

class TestCheckpointPolicy:
    def test_every_iterations(self):
        policy = CheckpointPolicy(every_iterations=3)
        assert not policy.due(2, 0.0)
        assert policy.due(3, 0.0)
        assert policy.due(4, 0.0)

    def test_every_sim_seconds(self):
        policy = CheckpointPolicy(every_sim_seconds=1.0)
        assert not policy.due(100, 0.5)
        assert policy.due(0, 1.0)

    def test_either_trigger(self):
        policy = CheckpointPolicy(every_iterations=5, every_sim_seconds=2.0)
        assert policy.due(5, 0.0)
        assert policy.due(0, 2.5)
        assert not policy.due(4, 1.9)

    def test_disabled_policy_never_fires(self):
        policy = CheckpointPolicy()
        assert not policy.enabled
        assert not policy.due(10**6, 10**6)
        assert policy.describe() == "never"

    def test_validation(self):
        with pytest.raises(CheckpointError):
            CheckpointPolicy(every_iterations=0)
        with pytest.raises(CheckpointError):
            CheckpointPolicy(every_sim_seconds=0.0)


# -- stores -------------------------------------------------------------------

class TestStores:
    @pytest.fixture(params=["memory", "directory"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return MemoryCheckpointStore()
        return DirectoryCheckpointStore(tmp_path / "ckpts")

    def test_save_load(self, store):
        seq, nbytes = store.save(b"first")
        assert seq == 0 and nbytes > len(b"first")
        assert store.load(0) == b"first"
        assert store.save(b"second")[0] == 1
        assert len(store) == 2

    def test_latest_valid_skips_torn(self, store):
        store.save(b"good-old")
        store.save_torn(b"doomed", fraction=0.5)
        found = store.latest_valid()
        assert found is not None
        seq, payload = found
        assert seq == 0 and payload == b"good-old"

    def test_latest_valid_none_when_all_bad(self, store):
        assert store.latest_valid() is None
        store.save_torn(b"doomed", fraction=0.3)
        assert store.latest_valid() is None

    def test_prune(self, store):
        for i in range(5):
            store.save(b"r%d" % i)
        assert store.prune(keep=2) == 3
        assert store.sequence_numbers() == [3, 4]
        assert store.latest_valid()[0] == 4

    def test_memory_corrupt_hook(self):
        store = MemoryCheckpointStore()
        store.save(b"payload-a")
        store.save(b"payload-b")
        store.corrupt(1, offset=30)
        seq, payload = store.latest_valid()
        assert seq == 0 and payload == b"payload-a"

    def test_directory_survives_reopen(self, tmp_path):
        first = DirectoryCheckpointStore(tmp_path / "ck")
        first.save(b"persisted")
        second = DirectoryCheckpointStore(tmp_path / "ck")
        assert second.latest_valid() == (0, b"persisted")
        assert second.next_sequence() == 1

    def test_directory_files_named_by_sequence(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "ck")
        store.save(b"x")
        assert (tmp_path / "ck" / "ckpt-00000000.bin").exists()
        # stray files are ignored
        (tmp_path / "ck" / "notes.txt").write_text("ignore me")
        assert store.sequence_numbers() == [0]


# -- ioutil (satellite) -------------------------------------------------------

class TestAtomicWrites:
    def test_success_replaces_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with atomic_writer(target) as handle:
            handle.write("new")
        assert target.read_text() == "new"
        assert os.listdir(tmp_path) == ["out.json"]  # no temp litter

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("partial")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "old"
        assert os.listdir(tmp_path) == ["out.json"]

    def test_json_helper(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_json(target, {"k": [1, 2]})
        assert json.loads(target.read_text()) == {"k": [1, 2]}
        assert target.read_text().endswith("\n")


# -- FaultLog round-trip (satellite regression) -------------------------------

class TestFaultLogRoundTrip:
    def _sample_log(self):
        log = FaultLog()
        log.add(kind="crash", op="launch", dpu_id=3, rank_id=0,
                action="retry-ok", retries=2, recovery_s=1.5e-4,
                phase="kernel", detail="y.int32")
        log.add(kind="bitflip", op="gather", dpu_id=np.int64(7), rank_id=0,
                action="redispatch", recovery_s=3e-5, phase="retrieve")
        log.quarantined.add(np.int64(7))
        log.failed_ranks.add(np.int64(1))
        return log

    def test_lossless_round_trip(self):
        log = self._sample_log()
        restored = FaultLog.from_dict(log.to_dict())
        assert restored.schedule() == log.schedule()
        assert [e.as_dict() for e in restored.events] == \
            [e.as_dict() for e in log.events]
        assert restored.quarantined == {7}
        assert restored.failed_ranks == {1}
        # sets restored as sets, not lists
        assert isinstance(restored.quarantined, set)

    def test_summary_json_serializable(self):
        """Regression: np.int64 members of `quarantined` broke --json."""
        log = self._sample_log()
        text = json.dumps(log.summary())
        parsed = json.loads(text)
        assert parsed["quarantined_dpus"] == [7]
        assert parsed["failed_ranks"] == [1]

    def test_to_dict_json_serializable(self):
        assert json.loads(json.dumps(self._sample_log().to_dict()))

    def test_from_dict_emits_no_observability(self):
        """Restoring a log must not re-emit tracer/metrics events."""
        from repro.observability import (
            ObservabilitySession,
            activate,
            deactivate,
        )

        data = self._sample_log().to_dict()
        session = activate(ObservabilitySession(trace=True, metrics=True))
        try:
            FaultLog.from_dict(data)
            assert len(session.tracer.events) == 0
            snapshot = session.metrics.snapshot()
            assert snapshot.counters.get("faults.events", 0) == 0
        finally:
            deactivate()


# -- kernel-policy state ------------------------------------------------------

class TestPolicyState:
    def test_fixed_policy_stateless(self):
        policy = FixedPolicy("spmv")
        assert policy.state_dict() == {}
        policy.load_state_dict({})  # no-op

    def test_adaptive_sticky_latch_round_trips(self):
        policy = AdaptiveSwitchPolicy(threshold=0.2)
        assert policy.state_dict() == {"switched": False}
        policy.choose(0, density=0.5)  # flips the latch
        assert policy.state_dict() == {"switched": True}

        fresh = AdaptiveSwitchPolicy(threshold=0.2)
        fresh.load_state_dict(policy.state_dict())
        # sticky: stays on spmv even below the threshold
        assert fresh.choose(1, density=0.01) == "spmv"


# -- session behaviour --------------------------------------------------------

class TestCheckpointSession:
    def test_disabled_session_is_null_object(self, graph, system):
        baseline = bfs(graph, 0, system, 64)
        assert baseline.checkpoint is None  # default path untouched

    def test_enabled_run_matches_disabled_bit_for_bit(self, graph, system):
        baseline = bfs(graph, 0, system, 64)
        config = CheckpointConfig(store=MemoryCheckpointStore())
        checked = bfs(graph, 0, system, 64, checkpoint=config)
        assert np.array_equal(baseline.values, checked.values)
        assert baseline.breakdown.total == checked.breakdown.total
        assert baseline.energy.total_j == checked.energy.total_j
        assert checked.checkpoint["records_written"] == \
            len(checked.iterations)
        assert checked.checkpoint["bytes_written"] > 0

    def test_cadence_every_k(self, graph, system):
        config = CheckpointConfig(
            store=MemoryCheckpointStore(),
            policy=CheckpointPolicy(every_iterations=3),
        )
        run = bfs(graph, 0, system, 64, checkpoint=config)
        assert run.checkpoint["records_written"] == \
            len(run.iterations) // 3

    def test_sim_seconds_cadence(self, graph, system):
        plain = bfs(graph, 0, system, 64)
        target = plain.breakdown.total / 2.5
        config = CheckpointConfig(
            store=MemoryCheckpointStore(),
            policy=CheckpointPolicy(every_sim_seconds=target),
        )
        run = bfs(graph, 0, system, 64, checkpoint=config)
        assert 1 <= run.checkpoint["records_written"] < len(run.iterations)

    def test_prune_keep(self, graph, system):
        store = MemoryCheckpointStore()
        config = CheckpointConfig(store=store, prune_keep=2)
        bfs(graph, 0, system, 64, checkpoint=config)
        assert len(store) == 2

    def test_algorithm_mismatch_rejected(self, graph, system):
        store = MemoryCheckpointStore()
        config = CheckpointConfig(store=store)
        bfs(graph, 0, system, 64, checkpoint=config)
        with pytest.raises(CheckpointError, match="cannot resume"):
            sssp(
                random_graph(n=96, avg_degree=4.0, seed=3, weights="random"),
                0, system, 64, checkpoint=config,
            )

    def test_resume_false_ignores_existing_records(self, graph, system):
        store = MemoryCheckpointStore()
        config = CheckpointConfig(store=store)
        bfs(graph, 0, system, 64, checkpoint=config)
        fresh = CheckpointConfig(store=store, resume=False)
        run = bfs(graph, 0, system, 64, checkpoint=fresh)
        assert run.checkpoint["restore_count"] == 0

    def test_zero_sim_time_overhead(self, graph, system):
        """Snapshots charge no simulated seconds (timeline-neutral)."""
        plain = bfs(graph, 0, system, 64)
        config = CheckpointConfig(store=MemoryCheckpointStore())
        checked = bfs(graph, 0, system, 64, checkpoint=config)
        assert plain.breakdown.as_dict() == checked.breakdown.as_dict()

    def test_open_checkpoint_factory(self, graph, system):
        from repro.algorithms.base import AlgorithmRun

        run = AlgorithmRun(algorithm="bfs", dataset="t")
        session = open_checkpoint(None, algorithm="bfs", run=run)
        assert not session.enabled
        sentinel = object()
        assert session.execute(lambda snap: sentinel) is sentinel


# -- restore-time cache interaction (satellite) -------------------------------

class TestRestoreCacheInteraction:
    def test_resumed_run_hits_plan_cache(self, graph, system):
        """A resumed invocation reuses cached partitioning: the plan and
        kernel caches serve the rebuilt MatvecDriver without any cold
        re-partitioning (no new misses)."""
        clear_caches()
        schedule = CrashSchedule(crash_iterations=[2])
        config = CheckpointConfig(
            store=MemoryCheckpointStore(), crash_schedule=schedule
        )
        with pytest.raises(SimulatedCrash):
            bfs(graph, 0, system, 64, checkpoint=config)
        before = cache_stats()
        resumed = bfs(graph, 0, system, 64, checkpoint=config)
        after = cache_stats()
        assert resumed.checkpoint["restore_count"] == 1

        for cache in ("plan_cache", "kernel_cache"):
            assert after[cache]["misses"] == before[cache]["misses"], (
                f"{cache}: resume caused a cold re-partition"
            )
        # The kernel cache fronts the plan cache: a warm resume is served
        # straight from it (the plan cache is never consulted again).
        warm_hits = (
            after["kernel_cache"]["hits"]
            + after["kernel_cache"]["structural_hits"]
        )
        cold_hits = (
            before["kernel_cache"]["hits"]
            + before["kernel_cache"]["structural_hits"]
        )
        assert warm_hits > cold_hits, "kernel_cache: no warm hit on resume"


# -- unrecoverable-fault rebuild (driver layer) -------------------------------

class TestUnrecoverableRecovery:
    def test_rebuild_and_resume_from_checkpoint(self, graph, system):
        baseline = bfs(graph, 0, system, 64)
        plan = FaultPlan.uniform(0.01, seed=5)
        driver = MatvecDriver(graph, system, 64, fault_plan=plan)
        real_step = driver.step
        state = {"calls": 0}

        def fatal_once(x, semiring, policy, iteration):
            state["calls"] += 1
            if iteration == 3 and state["calls"] <= 4:
                raise UnrecoverableFaultError("machine died")
            return real_step(x, semiring, policy, iteration)

        driver.step = fatal_once
        config = CheckpointConfig(store=MemoryCheckpointStore())
        run = bfs(graph, 0, system, 64, driver=driver, checkpoint=config)
        assert np.array_equal(baseline.values, run.values)
        assert run.checkpoint["machine_generation"] == 1
        assert run.checkpoint["restore_count"] >= 1

    def test_bounded_restores_then_propagates(self, graph, system):
        hostile = FaultPlan(seed=1, rank_failure_rate=1.0)
        config = CheckpointConfig(
            store=MemoryCheckpointStore(), max_restores=2
        )
        with pytest.raises(UnrecoverableFaultError):
            bfs(graph, 0, system, 64, fault_plan=hostile, checkpoint=config)

    def test_rebuild_reseeds_injector_and_quarantines_failed_ranks(
        self, graph, system
    ):
        plan = FaultPlan.uniform(0.02, seed=9)
        driver = MatvecDriver(graph, system, 64, fault_plan=plan)
        old = driver._fault_executor
        old.log.failed_ranks.add(0)
        driver.rebuild_fault_executor(salt=1)
        fresh = driver._fault_executor
        assert fresh is not old
        assert fresh.plan.seed != plan.seed
        assert fresh.log is old.log  # cumulative log carried forward
        assert fresh.healthy_count == 0  # the only rank was dead

    def test_rebuild_noop_without_fault_layer(self, graph, system):
        driver = MatvecDriver(graph, system, 64)
        driver.rebuild_fault_executor(salt=1)
        assert driver._fault_executor is None


# -- observability spans/metrics ----------------------------------------------

class TestCheckpointObservability:
    def test_save_and_restore_events(self, graph, system):
        from repro.observability import (
            ObservabilitySession,
            activate,
            deactivate,
        )

        schedule = CrashSchedule(crash_iterations=[2])
        config = CheckpointConfig(
            store=MemoryCheckpointStore(), crash_schedule=schedule
        )
        session = activate(ObservabilitySession(trace=True, metrics=True))
        try:
            with pytest.raises(SimulatedCrash):
                bfs(graph, 0, system, 64, checkpoint=config)
            run = bfs(graph, 0, system, 64, checkpoint=config)
            names = [e.name for e in session.tracer.events]
            assert "checkpoint:save" in names
            assert "checkpoint:restore" in names
            counters = session.metrics.snapshot().counters
            assert counters["checkpoint.records"] == \
                run.checkpoint["records_written"] + 2  # pre-crash saves
            assert counters["checkpoint.restore_count"] == 1
            assert counters["checkpoint.bytes_written"] > 0
        finally:
            deactivate()
