"""Tests for the SpMM kernel and multi-source BFS."""

import numpy as np
import pytest

from repro.algorithms import (
    bfs,
    bfs_reference,
    closeness_centrality_estimate,
    multi_source_bfs,
)
from repro.errors import KernelError, ReproError
from repro.kernels import prepare_spmm
from repro.semiring import BOOLEAN_OR_AND, PLUS_TIMES
from repro.sparse import COOMatrix, spmv_dense
from repro.upmem import SystemConfig
from conftest import random_graph

DPUS = 32


@pytest.fixture
def system():
    return SystemConfig(num_dpus=DPUS)


@pytest.fixture
def float_matrix():
    g = random_graph(n=150, avg_degree=6, seed=41)
    rng = np.random.default_rng(41)
    return COOMatrix(
        g.rows, g.cols, rng.uniform(0.2, 2.0, g.nnz).astype(np.float32),
        g.shape,
    )


class TestSpMM:
    def test_matches_columnwise_spmv(self, float_matrix, system):
        kernel = prepare_spmm(float_matrix, DPUS, system)
        rng = np.random.default_rng(1)
        block = rng.random((150, 5)).astype(np.float32)
        result = kernel.run(block, PLUS_TIMES)
        for j in range(5):
            expected = spmv_dense(float_matrix, block[:, j])
            assert np.allclose(result.output[:, j], expected, rtol=1e-5), j

    def test_boolean_semiring(self, system):
        matrix = random_graph(n=100, avg_degree=5, seed=43)
        kernel = prepare_spmm(matrix, DPUS, system)
        block = np.zeros((100, 3), dtype=np.int32)
        block[0, 0] = block[7, 1] = block[20, 2] = 1
        result = kernel.run(block, BOOLEAN_OR_AND)
        for j, src in enumerate((0, 7, 20)):
            single = spmv_dense(matrix, block[:, j], BOOLEAN_OR_AND)
            assert np.array_equal(result.output[:, j], single)

    def test_rejects_bad_shapes(self, float_matrix, system):
        kernel = prepare_spmm(float_matrix, DPUS, system)
        with pytest.raises(KernelError):
            kernel.run(np.ones(150, dtype=np.float32), PLUS_TIMES)
        with pytest.raises(KernelError):
            kernel.run(np.ones((99, 2), dtype=np.float32), PLUS_TIMES)
        with pytest.raises(KernelError):
            kernel.run(np.ones((150, 0), dtype=np.float32), PLUS_TIMES)

    def test_batching_amortizes_matrix_stream(self, float_matrix, system):
        """K-wide SpMM beats K sequential SpMVs on kernel time."""
        from repro.kernels import prepare_spmv_2d

        k = 8
        rng = np.random.default_rng(3)
        block = rng.random((150, k)).astype(np.float32)
        spmm_kernel = prepare_spmm(float_matrix, DPUS, system)
        spmm_time = spmm_kernel.run(block, PLUS_TIMES).breakdown.kernel

        spmv_kernel = prepare_spmv_2d(float_matrix, DPUS, system)
        sequential = sum(
            spmv_kernel.run(block[:, j], PLUS_TIMES).breakdown.kernel
            for j in range(k)
        )
        assert spmm_time < sequential

    def test_phases_positive(self, float_matrix, system):
        kernel = prepare_spmm(float_matrix, DPUS, system)
        result = kernel.run(
            np.ones((150, 4), dtype=np.float32), PLUS_TIMES
        )
        b = result.breakdown
        assert b.load > 0 and b.kernel > 0 and b.retrieve > 0
        assert result.achieved_ops == pytest.approx(
            2.0 * float_matrix.nnz * 4
        )


class TestMultiSourceBfs:
    def test_matches_single_source_runs(self, system):
        graph = random_graph(n=120, avg_degree=4, seed=47)
        sources = [0, 3, 50]
        run = multi_source_bfs(graph, sources, system, DPUS)
        for j, source in enumerate(sources):
            assert np.array_equal(
                run.values[:, j], bfs_reference(graph, source)
            ), source
        assert run.converged

    def test_batched_faster_than_sequential(self, system):
        graph = random_graph(n=400, avg_degree=6, seed=53)
        sources = list(range(8))
        batched = multi_source_bfs(graph, sources, system, DPUS)
        sequential = sum(
            bfs(graph, s, system, DPUS).total_s for s in sources
        )
        assert batched.total_s < sequential

    def test_rejects_empty_sources(self, graph, system):
        with pytest.raises(ReproError):
            multi_source_bfs(graph, [], system, DPUS)

    def test_rejects_bad_source(self, graph, system):
        with pytest.raises(ReproError):
            multi_source_bfs(graph, [10_000], system, DPUS)

    def test_traces_recorded(self, system):
        graph = random_graph(n=100, avg_degree=4, seed=59)
        run = multi_source_bfs(graph, [0, 1], system, DPUS)
        assert run.num_iterations >= 1
        assert run.iterations[0].frontier_size == 2


class TestClosenessEstimate:
    def test_shape_and_range(self, system):
        graph = random_graph(n=150, avg_degree=5, seed=61)
        closeness = closeness_centrality_estimate(
            graph, system, DPUS, num_samples=6,
            rng=np.random.default_rng(0),
        )
        assert closeness.shape == (150,)
        assert np.all(closeness >= 0)

    def test_hub_scores_higher_than_leaf(self, system):
        # star graph: center reachable from everyone in one hop
        edges = [(i, 0) for i in range(1, 30)] + [(0, i) for i in range(1, 30)]
        graph = COOMatrix.from_edges(edges, 30)
        closeness = closeness_centrality_estimate(
            graph, system, 8, num_samples=10,
            rng=np.random.default_rng(1),
        )
        assert closeness[0] == closeness.max()

    def test_rejects_zero_samples(self, graph, system):
        with pytest.raises(ReproError):
            closeness_centrality_estimate(graph, system, DPUS, num_samples=0)
