"""Tests for the host runtime (DPU sets) and the energy model."""

import numpy as np
import pytest

from repro.errors import TransferError, UpmemError
from repro.types import PhaseBreakdown
from repro.upmem import Dpu, DpuConfig, SystemConfig, UpmemEnergyModel, UpmemSystem


@pytest.fixture
def system():
    return UpmemSystem(SystemConfig(num_dpus=128))


class TestDpu:
    def test_memories_sized_from_config(self):
        dpu = Dpu(0, DpuConfig())
        assert dpu.mram.capacity == 64 * 1024 * 1024
        assert dpu.wram.capacity == 64 * 1024
        assert dpu.iram.capacity == 24 * 1024

    def test_reset(self):
        dpu = Dpu(0, DpuConfig())
        dpu.mram.store("x", np.zeros(4))
        dpu.reset()
        assert dpu.mram.used_bytes == 0

    def test_repr(self):
        assert "Dpu(id=3" in repr(Dpu(3, DpuConfig()))


class TestUpmemSystem:
    def test_allocate(self, system):
        dpus = system.allocate(16)
        assert len(dpus) == 16
        assert dpus[0].dpu_id == 0

    def test_allocate_too_many(self, system):
        with pytest.raises(UpmemError):
            system.allocate(129)

    def test_allocate_zero(self, system):
        with pytest.raises(UpmemError):
            system.allocate(0)

    def test_kernel_seconds(self, system):
        assert system.kernel_seconds(350e6) == pytest.approx(1.0)

    def test_repr(self, system):
        assert "dpus=128" in repr(system)


class TestDpuSet:
    def test_scatter_and_gather_functional(self, system):
        dpus = system.allocate(4)
        arrays = [np.full(8, i, dtype=np.int32) for i in range(4)]
        cost = dpus.scatter_arrays("chunk", arrays)
        assert cost.seconds > 0
        back, gather_cost = dpus.gather_arrays("chunk")
        for i, arr in enumerate(back):
            assert np.all(arr == i)
        assert gather_cost.bytes_moved == 4 * 32

    def test_scatter_replaces_in_place(self, system):
        dpus = system.allocate(2)
        dpus.scatter_arrays("v", [np.zeros(4, dtype=np.int32)] * 2)
        dpus.scatter_arrays("v", [np.ones(4, dtype=np.int32)] * 2)
        back, _ = dpus.gather_arrays("v")
        assert back[0].sum() == 4

    def test_scatter_wrong_count(self, system):
        dpus = system.allocate(4)
        with pytest.raises(TransferError):
            dpus.scatter_arrays("x", [np.zeros(4)])

    def test_broadcast(self, system):
        dpus = system.allocate(8)
        data = np.arange(16, dtype=np.int32)
        cost = dpus.broadcast_array("vec", data)
        assert cost.kind == "broadcast"
        for dpu in dpus:
            assert np.array_equal(dpu.mram.load("vec"), data)

    def test_load_program_fits(self, system):
        dpus = system.allocate(2)
        dpus.load_program("spmv", 2000)
        assert dpus[0].iram.used_bytes == 16000

    def test_iteration(self, system):
        dpus = system.allocate(3)
        assert [d.dpu_id for d in dpus] == [0, 1, 2]


class TestEnergyModel:
    def test_kernel_energy_components(self):
        system = SystemConfig(num_dpus=100)
        model = UpmemEnergyModel(system)
        report = model.kernel_energy(
            kernel_seconds=1.0, instructions=1e9, dma_bytes=1e9
        )
        assert report.static_j == pytest.approx(
            100 * system.energy.dpu_static_w
        )
        assert report.dynamic_j > 0
        assert report.transfer_j == 0

    def test_transfer_energy(self):
        model = UpmemEnergyModel(SystemConfig(num_dpus=64))
        report = model.transfer_energy(1e9, 0.5)
        assert report.transfer_j > 0
        assert report.static_j == pytest.approx(0.5 * 65.0)

    def test_run_energy_totals(self):
        model = UpmemEnergyModel(SystemConfig(num_dpus=64))
        breakdown = PhaseBreakdown(load=0.1, kernel=0.2, retrieve=0.1,
                                   merge=0.05)
        report = model.run_energy(
            breakdown, instructions=1e8, dma_bytes=1e8, transfer_bytes=1e8
        )
        parts = (
            model.kernel_energy(0.2, 1e8, 1e8).total_j
            + model.transfer_energy(1e8, 0.2).total_j
            + model.host_energy(0.05).total_j
        )
        assert report.total_j == pytest.approx(parts)

    def test_energy_scales_with_time(self):
        model = UpmemEnergyModel(SystemConfig(num_dpus=64))
        short = model.kernel_energy(0.1, 0, 0).total_j
        long = model.kernel_energy(1.0, 0, 0).total_j
        assert long == pytest.approx(10 * short)
