"""Unit tests for the shared kernel cost machinery."""

import numpy as np
import pytest

from repro.types import DataType
from repro.kernels import (
    DpuWorkload,
    PerElementCost,
    assemble_timing,
    compressed_entry_bytes,
    coo_element_bytes,
    indexed_element_bytes,
    streaming_cost,
)
from repro.upmem import DpuConfig, InstrClass


class TestByteHelpers:
    def test_coo_element(self):
        assert coo_element_bytes(DataType.INT32) == 12
        assert coo_element_bytes(DataType.FLOAT64) == 16

    def test_indexed_element(self):
        assert indexed_element_bytes(DataType.INT32) == 8
        assert indexed_element_bytes(DataType.INT64) == 12

    def test_compressed_entry(self):
        assert compressed_entry_bytes(DataType.FLOAT32) == 8


class TestPerElementCost:
    def test_streaming_cost_shape(self):
        cost = streaming_cost(12)
        assert cost.dma_bytes == 12.0
        assert cost.dma_transfers == pytest.approx(12 / 2048)
        assert cost.classes[InstrClass.LOADSTORE] == 2.0

    def test_with_semiring_ops_int(self):
        cost = PerElementCost().with_semiring_ops(DataType.INT32)
        assert cost.classes[InstrClass.MUL32] == 1.0
        assert cost.classes[InstrClass.ARITH] == 1.0

    def test_with_semiring_ops_float(self):
        cost = PerElementCost().with_semiring_ops(DataType.FLOAT32)
        assert cost.classes[InstrClass.FMUL] == 1.0
        assert cost.classes[InstrClass.FADD] == 1.0

    def test_with_semiring_ops_accumulates(self):
        base = PerElementCost(classes={InstrClass.MUL32: 1.0})
        cost = base.with_semiring_ops(DataType.INT32, multiplies=2.0)
        assert cost.classes[InstrClass.MUL32] == 3.0
        # original untouched
        assert base.classes[InstrClass.MUL32] == 1.0

    def test_with_semiring_ops_zero_counts(self):
        cost = PerElementCost().with_semiring_ops(
            DataType.INT32, multiplies=0.0, adds=0.0
        )
        assert InstrClass.MUL32 not in cost.classes


class TestAssembleTiming:
    CFG = DpuConfig(sustained_ipc=1.0)

    def _workload(self, elements, **cost_kwargs):
        cost = PerElementCost(
            classes={InstrClass.ARITH: 2.0, InstrClass.LOADSTORE: 1.0},
            **cost_kwargs,
        )
        return DpuWorkload(
            elements=np.asarray(elements, dtype=np.float64), cost=cost,
            fixed_instructions=10.0,
        )

    def test_single_workload(self):
        estimate, profile, active = assemble_timing(
            self._workload([100.0, 200.0]), DataType.INT32, 24, self.CFG
        )
        assert estimate.cycles.shape == (2,)
        assert estimate.cycles[1] > estimate.cycles[0]
        assert profile.count(InstrClass.ARITH) == 600
        assert 0 < active <= 24

    def test_multiple_workloads_accumulate(self):
        one = assemble_timing(
            self._workload([500.0]), DataType.INT32, 24, self.CFG
        )[0]
        two = assemble_timing(
            [self._workload([500.0]), self._workload([500.0])],
            DataType.INT32, 24, self.CFG,
        )[0]
        assert two.cycles[0] > one.cycles[0]

    def test_mutex_heavy_workload_hits_lock_bound(self):
        workload = self._workload([10_000.0], mutex_acquires=1.0)
        estimate, _, _ = assemble_timing(
            workload, DataType.INT32, 24, self.CFG
        )
        # 10k acquires over 32 locks x 24-cycle critical sections
        assert estimate.cycles[0] >= (10_000 / 32) * 24 - 1

    def test_dma_heavy_workload_exposes_memory(self):
        workload = DpuWorkload(
            elements=np.array([100.0]),
            cost=PerElementCost(
                classes={InstrClass.ARITH: 1.0},
                dma_bytes=2048.0,
                dma_transfers=1.0,
            ),
        )
        estimate, profile, _ = assemble_timing(
            workload, DataType.INT32, 1, self.CFG
        )
        assert float(estimate.idle_memory.sum()) > 0
        assert profile.dma_bytes == 100 * 2048

    def test_occupancy_flag_respected(self):
        busy = self._workload([48.0])
        barrier = DpuWorkload(
            elements=np.array([24.0]),
            cost=PerElementCost(classes={InstrClass.SYNC: 2.0}),
            fixed_instructions=0.0,
            drives_occupancy=False,
        )
        __, __, active_with = assemble_timing(
            [self._workload([2.0]), barrier], DataType.INT32, 24, self.CFG
        )
        # occupancy driven by the 2-element workload, not the barriers
        assert active_with <= 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            assemble_timing([], DataType.INT32, 24, self.CFG)

    def test_extra_arrays(self):
        workload = self._workload([10.0])
        workload.extra_dma_bytes = np.array([4096.0])
        workload.extra_arith = np.array([50.0])
        estimate, profile, _ = assemble_timing(
            workload, DataType.INT32, 24, self.CFG
        )
        assert profile.dma_bytes >= 4096
        base = assemble_timing(
            self._workload([10.0]), DataType.INT32, 24, self.CFG
        )[0]
        assert estimate.cycles[0] > base.cycles[0]
