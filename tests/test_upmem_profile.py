"""Tests for kernel-profile aggregation and the ISA profile type."""

import numpy as np
import pytest

from repro.upmem import (
    EXPANSION,
    DpuConfig,
    InstructionProfile,
    InstrClass,
    KernelProfile,
    estimate_cycles,
    merge_profiles,
    useful_ops,
)


def make_profile(arith=100, loads=50, sync=10, dma_bytes=2048):
    profile = InstructionProfile()
    profile.add(InstrClass.ARITH, arith)
    profile.add(InstrClass.LOADSTORE, loads)
    profile.add(InstrClass.SYNC, sync)
    profile.add_dma(dma_bytes, 2)
    profile.mutex_acquires = sync // 2
    return profile


class TestInstructionProfile:
    def test_counts_and_totals(self):
        profile = make_profile()
        assert profile.count(InstrClass.ARITH) == 100
        assert profile.total_instructions == 100 + 50 + 10 + 2
        assert profile.dma_bytes == 2048

    def test_dispatch_slots_expand(self):
        profile = InstructionProfile()
        profile.add(InstrClass.FMUL, 3)
        assert profile.dispatch_slots == 3 * EXPANSION[InstrClass.FMUL]

    def test_rejects_negative(self):
        profile = InstructionProfile()
        with pytest.raises(ValueError):
            profile.add(InstrClass.ARITH, -1)
        with pytest.raises(ValueError):
            profile.add_dma(-5)

    def test_merged(self):
        merged = make_profile().merged(make_profile(arith=10))
        assert merged.count(InstrClass.ARITH) == 110
        assert merged.dma_bytes == 4096
        assert merged.mutex_acquires == 10

    def test_scaled_preserves_nonzero_classes(self):
        scaled = make_profile().scaled(0.001)
        # every class that existed keeps at least one instruction
        assert scaled.count(InstrClass.SYNC) >= 1
        assert scaled.count(InstrClass.ARITH) >= 1

    def test_mix_fractions_sum_to_one(self):
        mix = make_profile().mix_fractions()
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_mix_fractions_empty(self):
        assert all(v == 0.0 for v in InstructionProfile().mix_fractions().values())


class TestKernelProfile:
    def _kernel_profile(self):
        profile = make_profile(arith=2000, loads=1000, sync=100,
                               dma_bytes=1 << 16)
        estimate = estimate_cycles(
            slots_total=np.array([5000.0]),
            slots_max_tasklet=np.array([300.0]),
            dma_cycles_total=np.array([1000.0]),
            dma_cycles_max_tasklet=np.array([100.0]),
            mutex_acquires=np.array([50.0]),
            instructions_total=np.array([3100.0]),
            active_tasklets=np.array([16]),
        )
        return KernelProfile(
            kernel_name="test",
            instructions=profile,
            estimate=estimate,
            num_dpus=4,
            active_tasklets_per_dpu=16.0,
        )

    def test_instruction_mix_buckets(self):
        mix = self._kernel_profile().instruction_mix()
        assert set(mix) == {"arith", "loadstore", "dma", "sync", "control"}
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_cycle_breakdown(self):
        breakdown = self._kernel_profile().cycle_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_no_estimate_defaults(self):
        empty = KernelProfile(kernel_name="x")
        assert empty.cycle_breakdown()["issue"] == 0.0
        assert empty.avg_active_threads == 0.0

    def test_simulate_representative_dpu(self):
        stats = self._kernel_profile().simulate_representative_dpu(
            config=DpuConfig(), num_tasklets=4, max_instructions=2000,
        )
        assert stats.instructions_issued > 0
        assert stats.cycles > 0

    def test_simulate_rejects_no_dpus(self):
        profile = KernelProfile(kernel_name="x", num_dpus=0)
        with pytest.raises(ValueError):
            profile.simulate_representative_dpu()


class TestMergeAndOps:
    def test_merge_profiles(self):
        a = self_profile = KernelProfile(
            kernel_name="a", instructions=make_profile(), num_dpus=4,
            active_tasklets_per_dpu=8.0,
        )
        b = KernelProfile(
            kernel_name="b", instructions=make_profile(arith=50),
            num_dpus=8, active_tasklets_per_dpu=16.0,
        )
        merged = merge_profiles("combined", [a, b])
        assert merged.kernel_name == "combined"
        assert merged.num_dpus == 8
        assert merged.instructions.count(InstrClass.ARITH) == 150
        assert merged.active_tasklets_per_dpu == pytest.approx(12.0)

    def test_useful_ops_counts_arith_classes(self):
        profile = InstructionProfile()
        profile.add(InstrClass.ARITH, 10)
        profile.add(InstrClass.FMUL, 5)
        profile.add(InstrClass.LOADSTORE, 100)  # not useful work
        assert useful_ops(profile) == 15.0
