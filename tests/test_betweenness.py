"""Tests for linear-algebraic betweenness centrality."""

import numpy as np
import pytest

from repro.algorithms import betweenness_centrality, betweenness_reference
from repro.algorithms.base import FixedPolicy
from repro.errors import ReproError
from repro.sparse import COOMatrix
from repro.upmem import SystemConfig
from conftest import random_graph

DPUS = 32


@pytest.fixture
def system():
    return SystemConfig(num_dpus=DPUS)


class TestBetweenness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brandes_reference(self, seed, system):
        graph = random_graph(n=80, avg_degree=4, seed=seed)
        sources = [0, 7, 21]
        run = betweenness_centrality(graph, sources, system, DPUS)
        reference = betweenness_reference(graph, sources)
        assert np.allclose(run.values, reference)

    def test_matches_networkx_exact(self, system):
        networkx = pytest.importorskip("networkx")
        graph = random_graph(n=35, avg_degree=3, seed=11)
        run = betweenness_centrality(
            graph, list(range(35)), system, DPUS
        )
        nx_graph = networkx.DiGraph()
        nx_graph.add_nodes_from(range(35))
        coo = graph.to_coo()
        for v, u in zip(coo.rows, coo.cols):
            nx_graph.add_edge(int(u), int(v))
        expected = networkx.betweenness_centrality(
            nx_graph, normalized=False
        )
        for node in range(35):
            assert run.values[node] == pytest.approx(expected[node],
                                                     abs=1e-8)

    def test_path_graph_center_highest(self, system):
        # 0 -> 1 -> 2 -> 3 -> 4: vertex 2 carries the most pairs
        edges = [(i, i + 1) for i in range(4)]
        graph = COOMatrix.from_edges(edges, 5)
        run = betweenness_centrality(graph, range(5), system, 4)
        assert int(np.argmax(run.values)) == 2
        assert run.values[0] == 0.0 and run.values[4] == 0.0

    def test_star_center(self, system):
        edges = [(0, i) for i in range(1, 6)] + [(i, 0) for i in range(1, 6)]
        graph = COOMatrix.from_edges(edges, 6)
        run = betweenness_centrality(graph, range(6), system, 4)
        assert int(np.argmax(run.values)) == 0

    def test_normalization(self, system):
        graph = random_graph(n=30, avg_degree=3, seed=13)
        raw = betweenness_centrality(graph, range(30), system, DPUS)
        norm = betweenness_centrality(
            graph, range(30), system, DPUS, normalized=True
        )
        assert np.allclose(norm.values, raw.values / (29 * 28))

    def test_spmv_policy_agrees(self, system):
        graph = random_graph(n=60, avg_degree=4, seed=17)
        a = betweenness_centrality(graph, [0, 1], system, DPUS,
                                   policy=FixedPolicy("spmv"))
        b = betweenness_centrality(graph, [0, 1], system, DPUS,
                                   policy=FixedPolicy("spmspv"))
        assert np.allclose(a.values, b.values)

    def test_phases_accumulated(self, system):
        graph = random_graph(n=50, avg_degree=4, seed=19)
        run = betweenness_centrality(graph, [0], system, DPUS)
        # forward + backward sweeps both recorded
        assert run.num_iterations >= 2
        assert run.total_s > 0
        assert run.energy.total_j > 0

    def test_rejects_bad_sources(self, graph, system):
        with pytest.raises(ReproError):
            betweenness_centrality(graph, [], system, DPUS)
        with pytest.raises(ReproError):
            betweenness_centrality(graph, [10_000], system, DPUS)

    def test_weighted_values_ignored(self, system):
        """BC counts hops; edge weights must not change the result."""
        graph = random_graph(n=40, avg_degree=4, seed=23)
        weighted = COOMatrix(
            graph.rows, graph.cols,
            np.random.default_rng(1).integers(
                1, 9, graph.nnz
            ).astype(np.int32),
            graph.shape,
        )
        a = betweenness_centrality(graph, [0, 3], system, DPUS)
        b = betweenness_centrality(weighted, [0, 3], system, DPUS)
        assert np.allclose(a.values, b.values)


@pytest.mark.faults
class TestBetweennessResilience:
    """BC through the fault/checkpoint plumbing (PR 7 satellite)."""

    NUM_DPUS = 128  # two ranks: rank loss is survivable, not fatal
    SOURCES = [0, 7, 21]

    @pytest.fixture
    def big_system(self):
        return SystemConfig(num_dpus=self.NUM_DPUS)

    @pytest.fixture
    def graph(self):
        return random_graph(n=80, avg_degree=4, seed=0)

    def clean_run(self, graph, big_system):
        return betweenness_centrality(
            graph, self.SOURCES, big_system, self.NUM_DPUS
        )

    @pytest.mark.parametrize("seed", [0, 11])
    def test_bit_identical_under_5pct_faults(self, graph, big_system, seed):
        from repro.faults import FaultPlan

        clean = self.clean_run(graph, big_system)
        run = betweenness_centrality(
            graph, self.SOURCES, big_system, self.NUM_DPUS,
            fault_plan=FaultPlan.uniform(0.05, seed=seed),
        )
        assert run.fault_log is not None
        assert len(run.fault_log.events) > 0
        assert run.values.tobytes() == clean.values.tobytes()

    def test_checkpoint_resume_at_source_boundary(self, graph, big_system):
        from repro.checkpoint import (
            CheckpointConfig,
            CrashSchedule,
            MemoryCheckpointStore,
            SimulatedCrash,
        )

        clean = self.clean_run(graph, big_system)
        store = MemoryCheckpointStore()
        config = CheckpointConfig(
            store=store, resume=True,
            crash_schedule=CrashSchedule(crash_iterations=[2]),
        )
        with pytest.raises(SimulatedCrash):
            betweenness_centrality(
                graph, self.SOURCES, big_system, self.NUM_DPUS,
                checkpoint=config,
            )
        assert len(store) >= 1  # source boundaries 0 and 1 committed

        resumed = betweenness_centrality(
            graph, self.SOURCES, big_system, self.NUM_DPUS,
            checkpoint=config,
        )
        assert resumed.checkpoint["resumed_from_iteration"] is not None
        assert resumed.values.tobytes() == clean.values.tobytes()
