"""Tests for the UPMEM system configuration."""

import pytest

from repro.errors import UpmemError
from repro.upmem import (
    DEFAULT_STUDY_DPUS,
    FIG8_DPU_COUNTS,
    PAPER_SYSTEM,
    DpuConfig,
    SystemConfig,
    TransferConfig,
)


class TestDpuConfig:
    def test_paper_defaults(self):
        cfg = DpuConfig()
        assert cfg.frequency_hz == pytest.approx(350e6)
        assert cfg.num_tasklets == 24
        assert cfg.pipeline_depth == 14
        assert cfg.dispatch_gap_cycles == 11
        assert cfg.wram_bytes == 64 * 1024
        assert cfg.mram_bytes == 64 * 1024 * 1024
        assert cfg.iram_bytes == 24 * 1024
        assert cfg.blocking_dma

    def test_cycles_to_seconds(self):
        cfg = DpuConfig()
        assert cfg.cycles_to_seconds(350e6) == pytest.approx(1.0)

    def test_dma_cycles_zero(self):
        assert DpuConfig().dma_cycles(0) == 0.0

    def test_dma_cycles_small_transfer(self):
        cfg = DpuConfig()
        # a single 8-byte transfer pays the full setup latency
        assert cfg.dma_cycles(8) == pytest.approx(
            cfg.dma_latency_cycles + 8 * cfg.dma_cycles_per_byte
        )

    def test_dma_cycles_chunked(self):
        cfg = DpuConfig()
        # transfers beyond the max size pay the latency per chunk
        two_chunks = cfg.dma_cycles(cfg.dma_max_bytes + 1)
        assert two_chunks > 2 * cfg.dma_latency_cycles

    def test_dma_cycles_monotone(self):
        cfg = DpuConfig()
        sizes = [8, 64, 512, 2048, 4096, 65536]
        costs = [cfg.dma_cycles(s) for s in sizes]
        assert costs == sorted(costs)


class TestSystemConfig:
    def test_paper_topology(self):
        assert PAPER_SYSTEM.num_dpus == 2560
        assert PAPER_SYSTEM.dpus_per_rank == 64
        assert PAPER_SYSTEM.num_ranks == 40
        assert PAPER_SYSTEM.num_dimms == 20

    def test_partial_rank(self):
        cfg = SystemConfig(num_dpus=65)
        assert cfg.num_ranks == 2

    def test_rejects_zero_dpus(self):
        with pytest.raises(UpmemError):
            SystemConfig(num_dpus=0)

    def test_with_dpus(self):
        small = PAPER_SYSTEM.with_dpus(512)
        assert small.num_dpus == 512
        assert small.dpu == PAPER_SYSTEM.dpu

    def test_peak_ops(self):
        cfg = SystemConfig(num_dpus=100)
        assert cfg.peak_ops_per_s == pytest.approx(100 * 350e6)

    def test_fig8_counts(self):
        assert FIG8_DPU_COUNTS == (512, 1024, 2048)
        assert DEFAULT_STUDY_DPUS == 2048


class TestTransferConfig:
    def test_effective_bw_caps(self):
        cfg = TransferConfig()
        assert cfg.effective_bw(1, True) == pytest.approx(cfg.per_rank_bw)
        assert cfg.effective_bw(1000, True) == pytest.approx(cfg.h2d_peak_bw)
        assert cfg.effective_bw(1000, False) == pytest.approx(cfg.d2h_peak_bw)

    def test_effective_bw_rejects_zero_ranks(self):
        with pytest.raises(UpmemError):
            TransferConfig().effective_bw(0, True)

    def test_d2h_slower_than_h2d(self):
        cfg = TransferConfig()
        assert cfg.d2h_peak_bw < cfg.h2d_peak_bw
