"""Cross-validation of the sparse substrate against SciPy."""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")

from repro.sparse import COOMatrix, random_sparse_vector, spmspv, spmv_dense
from repro.semiring import PLUS_TIMES


def make_pair(seed=0, n=80, density=0.1):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.uniform(0.5, 2.0, (n, n))
    ours = COOMatrix.from_dense(dense)
    theirs = scipy_sparse.csr_matrix(dense)
    return ours, theirs


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(5))
    def test_spmv_matches(self, seed):
        ours, theirs = make_pair(seed)
        x = np.random.default_rng(seed + 50).random(ours.ncols)
        assert np.allclose(spmv_dense(ours, x), theirs @ x)

    @pytest.mark.parametrize("seed", range(3))
    def test_spmspv_matches(self, seed):
        ours, theirs = make_pair(seed)
        x = random_sparse_vector(
            ours.ncols, 0.2, rng=np.random.default_rng(seed)
        )
        got = spmspv(ours, x, PLUS_TIMES).to_dense()
        assert np.allclose(got, theirs @ x.to_dense())

    def test_csr_arrays_match(self):
        ours, theirs = make_pair(7)
        csr = ours.to_csr()
        assert np.array_equal(csr.row_ptr, theirs.indptr)
        assert np.array_equal(csr.col_indices, theirs.indices)
        assert np.allclose(csr.values, theirs.data)

    def test_csc_arrays_match(self):
        ours, theirs = make_pair(8)
        csc = ours.to_csc()
        theirs_csc = theirs.tocsc()
        assert np.array_equal(csc.col_ptr, theirs_csc.indptr)
        assert np.array_equal(csc.row_indices, theirs_csc.indices)
        assert np.allclose(csc.values, theirs_csc.data)

    def test_matrix_power_chain(self):
        """Iterated matvec (the algorithm inner loop) tracks scipy."""
        ours, theirs = make_pair(9, n=40)
        x_ours = np.ones(40)
        x_theirs = np.ones(40)
        for _ in range(4):
            x_ours = spmv_dense(ours, x_ours)
            x_theirs = theirs @ x_theirs
        assert np.allclose(x_ours, x_theirs)
