"""Tests for the five SpMSpV kernel variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels import (
    BEST_SPMSPV,
    BEST_SPMV,
    FIG5_VARIANTS,
    KERNELS,
    prepare_kernel,
)
from repro.semiring import BOOLEAN_OR_AND, MIN_PLUS, PLUS_TIMES
from repro.sparse import COOMatrix, SparseVector, random_sparse_vector, spmspv
from repro.upmem import SystemConfig
from conftest import random_graph

SPMSPV_NAMES = [n for n in KERNELS if n.startswith("spmspv")]


@pytest.fixture
def system():
    return SystemConfig(num_dpus=64)


@pytest.fixture
def matrix():
    return random_graph(n=300, avg_degree=7, seed=11)


class TestCorrectness:
    @pytest.mark.parametrize("name", SPMSPV_NAMES)
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3, 1.0])
    def test_matches_reference(self, name, density, matrix, system):
        kernel = prepare_kernel(name, matrix, 32, system)
        x = random_sparse_vector(
            300, density, rng=np.random.default_rng(13), dtype=np.int32
        )
        result = kernel.run(x, PLUS_TIMES)
        expected = spmspv(matrix, x, PLUS_TIMES)
        assert np.array_equal(
            result.output.to_dense(), expected.to_dense()
        ), name

    @pytest.mark.parametrize("name", SPMSPV_NAMES)
    def test_min_plus(self, name, system):
        matrix = random_graph(n=200, seed=17, weights="random")
        kernel = prepare_kernel(name, matrix, 32, system)
        x = SparseVector.basis(0, 200, value=0.0)
        result = kernel.run(x, MIN_PLUS)
        expected = spmspv(matrix, x, MIN_PLUS)
        assert result.output == expected

    @pytest.mark.parametrize("name", SPMSPV_NAMES)
    def test_boolean(self, name, matrix, system):
        kernel = prepare_kernel(name, matrix, 32, system)
        x = SparseVector.basis(5, 300, value=np.int32(1))
        result = kernel.run(x, BOOLEAN_OR_AND)
        expected = spmspv(matrix, x, BOOLEAN_OR_AND)
        assert result.output == expected

    def test_rejects_dense_input(self, matrix, system):
        kernel = prepare_kernel(BEST_SPMSPV, matrix, 16, system)
        with pytest.raises(KernelError):
            kernel.run(np.ones(300), PLUS_TIMES)

    def test_rejects_wrong_length(self, matrix, system):
        kernel = prepare_kernel(BEST_SPMSPV, matrix, 16, system)
        with pytest.raises(KernelError):
            kernel.run(SparseVector.empty(42), PLUS_TIMES)

    def test_empty_input_empty_output(self, matrix, system):
        kernel = prepare_kernel(BEST_SPMSPV, matrix, 16, system)
        result = kernel.run(SparseVector.empty(300), PLUS_TIMES)
        assert result.output.nnz == 0
        assert result.elements_processed == 0


class TestPhaseShapes:
    def test_load_scales_with_density(self, matrix, system):
        kernel = prepare_kernel(BEST_SPMSPV, matrix, 32, system)
        rng = np.random.default_rng(19)
        sparse = kernel.run(
            random_sparse_vector(300, 0.01, rng=rng, dtype=np.int32),
            PLUS_TIMES,
        )
        dense = kernel.run(
            random_sparse_vector(300, 0.9, rng=rng, dtype=np.int32),
            PLUS_TIMES,
        )
        assert dense.bytes_loaded > sparse.bytes_loaded

    def test_broadcast_variants_load_more_bytes(self, system):
        matrix = random_graph(n=3000, avg_degree=6, seed=23)
        x = random_sparse_vector(
            3000, 0.3, rng=np.random.default_rng(5), dtype=np.int32
        )
        csc_r = prepare_kernel("spmspv-csc-r", matrix, 64, system).run(
            x, PLUS_TIMES
        )
        csc_2d = prepare_kernel("spmspv-csc-2d", matrix, 64, system).run(
            x, PLUS_TIMES
        )
        # CSC-R broadcasts the full compressed vector to every DPU
        assert csc_r.bytes_loaded > csc_2d.bytes_loaded

    def test_rowwise_variants_skip_merge(self, matrix, system):
        for name in ("spmspv-coo", "spmspv-csr", "spmspv-csc-r"):
            kernel = prepare_kernel(name, matrix, 16, system)
            x = random_sparse_vector(
                300, 0.2, rng=np.random.default_rng(1), dtype=np.int32
            )
            assert kernel.run(x, PLUS_TIMES).breakdown.merge == 0.0, name

    def test_merge_variants_pay_merge(self, matrix, system):
        for name in ("spmspv-csc-c", "spmspv-csc-2d"):
            kernel = prepare_kernel(name, matrix, 16, system)
            x = random_sparse_vector(
                300, 0.5, rng=np.random.default_rng(1), dtype=np.int32
            )
            result = kernel.run(x, PLUS_TIMES)
            if kernel.plan.needs_merge:
                assert result.breakdown.merge > 0.0, name

    def test_csr_kernel_slowest_at_high_density(self, system):
        matrix = random_graph(n=1000, avg_degree=6, seed=29)
        x = random_sparse_vector(
            1000, 0.5, rng=np.random.default_rng(3), dtype=np.int32
        )
        kernel_times = {}
        for name in SPMSPV_NAMES:
            kernel = prepare_kernel(name, matrix, 32, system)
            kernel_times[name] = kernel.run(x, PLUS_TIMES).breakdown.kernel
        assert kernel_times["spmspv-csr"] == max(kernel_times.values())

    def test_achieved_ops_counts_matched(self, matrix, system):
        kernel = prepare_kernel(BEST_SPMSPV, matrix, 16, system)
        x = SparseVector.basis(0, 300, value=np.int32(1))
        result = kernel.run(x, PLUS_TIMES)
        csc = matrix.to_csc()
        col_len = int(csc.column_lengths()[0])
        assert result.elements_processed == col_len
        assert result.achieved_ops == 2.0 * col_len


class TestRegistry:
    def test_all_kernels_registered(self):
        assert set(FIG5_VARIANTS) <= set(KERNELS)
        assert BEST_SPMV in KERNELS
        assert BEST_SPMSPV in KERNELS

    def test_unknown_kernel(self, matrix, system):
        with pytest.raises(KernelError, match="unknown kernel"):
            prepare_kernel("spmspv-magic", matrix, 8, system)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(0, 10_000),
    st.sampled_from(SPMSPV_NAMES),
    st.floats(0.0, 1.0),
)
def test_property_variant_agreement(seed, name, density):
    """Every variant computes the same function on random inputs."""
    rng = np.random.default_rng(seed)
    n = 60
    dense = (rng.random((n, n)) < 0.15).astype(np.int32)
    matrix = COOMatrix.from_dense(dense)
    system = SystemConfig(num_dpus=64)
    kernel = prepare_kernel(name, matrix, 8, system)
    x = random_sparse_vector(n, density, rng=rng, dtype=np.int32)
    result = kernel.run(x, PLUS_TIMES)
    expected = spmspv(matrix, x, PLUS_TIMES)
    assert np.array_equal(result.output.to_dense(), expected.to_dense())
