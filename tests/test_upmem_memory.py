"""Tests for the MRAM / WRAM / IRAM models."""

import numpy as np
import pytest

from repro.errors import (
    IramOverflowError,
    MramOverflowError,
    UpmemError,
    WramOverflowError,
)
from repro.upmem import Iram, Mram, Wram, plan_wram_buffers


class TestBumpAllocation:
    def test_allocate_and_track(self):
        wram = Wram(1024)
        a = wram.allocate("buf", 100)
        assert a.offset == 0
        assert a.size == 104  # 8-byte aligned
        assert wram.used_bytes == 104
        assert wram.free_bytes == 920
        assert "buf" in wram

    def test_sequential_offsets(self):
        wram = Wram(1024)
        a = wram.allocate("a", 16)
        b = wram.allocate("b", 16)
        assert b.offset == a.end

    def test_overflow(self):
        wram = Wram(64)
        with pytest.raises(WramOverflowError):
            wram.allocate("big", 128)

    def test_duplicate_name(self):
        wram = Wram(1024)
        wram.allocate("x", 8)
        with pytest.raises(UpmemError):
            wram.allocate("x", 8)

    def test_negative_size(self):
        with pytest.raises(UpmemError):
            Wram(64).allocate("x", -1)

    def test_reset(self):
        wram = Wram(64)
        wram.allocate("x", 32)
        wram.reset()
        assert wram.used_bytes == 0
        wram.allocate("x", 32)  # name free again

    def test_zero_capacity_rejected(self):
        with pytest.raises(UpmemError):
            Wram(0)


class TestMram:
    def test_store_and_load(self):
        mram = Mram(1 << 20)
        data = np.arange(100, dtype=np.int32)
        mram.store("vec", data)
        assert np.array_equal(mram.load("vec"), data)

    def test_load_missing(self):
        with pytest.raises(MramOverflowError):
            Mram(1024).load("nope")

    def test_replace(self):
        mram = Mram(1 << 16)
        mram.store("vec", np.zeros(64, dtype=np.int32))
        mram.replace("vec", np.ones(32, dtype=np.int32))
        assert mram.load("vec").sum() == 32

    def test_replace_too_big(self):
        mram = Mram(1 << 16)
        mram.store("vec", np.zeros(8, dtype=np.int32))
        with pytest.raises(MramOverflowError):
            mram.replace("vec", np.zeros(1000, dtype=np.int32))

    def test_replace_missing(self):
        with pytest.raises(MramOverflowError):
            Mram(1024).replace("vec", np.zeros(1))

    def test_capacity_enforced(self):
        mram = Mram(256)
        with pytest.raises(MramOverflowError):
            mram.store("big", np.zeros(1000, dtype=np.float64))

    def test_reset_clears_data(self):
        mram = Mram(1024)
        mram.store("x", np.zeros(4))
        mram.reset()
        with pytest.raises(MramOverflowError):
            mram.load("x")


class TestWramSplitting:
    def test_split_among_tasklets(self):
        wram = Wram(64 * 1024)
        per = wram.split_among_tasklets(24)
        assert per > 0
        assert per % 8 == 0
        assert per * 24 <= 64 * 1024

    def test_split_with_reservation(self):
        wram = Wram(64 * 1024)
        with_reserve = wram.split_among_tasklets(24, reserved=32 * 1024)
        without = wram.split_among_tasklets(24)
        assert with_reserve < without

    def test_split_rejects_over_reservation(self):
        wram = Wram(1024)
        with pytest.raises(WramOverflowError):
            wram.split_among_tasklets(4, reserved=2048)

    def test_split_rejects_zero_tasklets(self):
        with pytest.raises(UpmemError):
            Wram(1024).split_among_tasklets(0)

    def test_plan_wram_buffers(self):
        wram = Wram(64 * 1024)
        plan = plan_wram_buffers(wram, 24, ["matrix", "vector", "output"])
        assert set(plan) == {"matrix", "vector", "output"}
        sizes = set(plan.values())
        assert len(sizes) == 1  # even split
        assert next(iter(sizes)) % 8 == 0

    def test_plan_wram_buffers_overflow(self):
        wram = Wram(512)
        with pytest.raises(WramOverflowError):
            plan_wram_buffers(wram, 24, ["a", "b", "c"], reserved=256)

    def test_plan_wram_buffers_needs_streams(self):
        with pytest.raises(UpmemError):
            plan_wram_buffers(Wram(1024), 4, [])


class TestIram:
    def test_program_fits(self):
        iram = Iram(24 * 1024)
        iram.load_program("kernel", 1000)
        assert iram.used_bytes == 8000

    def test_program_too_big(self):
        iram = Iram(24 * 1024)
        with pytest.raises(IramOverflowError):
            iram.load_program("huge", iram.max_instructions + 1)

    def test_max_instructions(self):
        assert Iram(24 * 1024).max_instructions == 3072
