"""Tests for the partitioning strategies (Fig. 3 + SparseP splits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition import (
    balanced_boundaries,
    colwise,
    coo_nnz,
    dcoo,
    even_boundaries,
    grid2d,
    grid_shape,
    imbalance_factor,
    rowwise,
    tasklet_element_shares,
)
from repro.sparse import COOMatrix, spmv_dense


def sample_matrix(seed=0, n=60, density=0.08):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.uniform(0.5, 2.0, (n, n))
    return COOMatrix.from_dense(dense)


ALL_STRATEGIES = [
    lambda m, d: rowwise(m, d, "coo"),
    lambda m, d: rowwise(m, d, "csr"),
    lambda m, d: rowwise(m, d, "csc"),
    lambda m, d: colwise(m, d),
    lambda m, d: grid2d(m, d),
    lambda m, d: coo_nnz(m, d),
    lambda m, d: dcoo(m, d),
]


class TestBalanceHelpers:
    def test_balanced_boundaries_cover(self):
        weights = np.array([5, 1, 1, 1, 5, 1, 1, 1])
        bounds = balanced_boundaries(weights, 4)
        assert bounds[0] == 0 and bounds[-1] == 8
        assert np.all(np.diff(bounds) >= 0)

    def test_balanced_boundaries_quality(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(1, 10, 1000)
        bounds = balanced_boundaries(weights, 8)
        parts = [
            weights[bounds[i]:bounds[i + 1]].sum() for i in range(8)
        ]
        assert imbalance_factor(np.array(parts)) < 1.2

    def test_balanced_boundaries_zero_weights(self):
        bounds = balanced_boundaries(np.zeros(10), 5)
        assert bounds[-1] == 10

    def test_balanced_rejects_zero_parts(self):
        with pytest.raises(PartitionError):
            balanced_boundaries(np.ones(4), 0)

    def test_even_boundaries(self):
        bounds = even_boundaries(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert len(bounds) == 4

    def test_grid_shape_row_bias(self):
        rows, cols = grid_shape(2048)
        assert rows * cols == 2048
        assert rows > cols  # row-heavy by design

    def test_grid_shape_square_bias_one(self):
        rows, cols = grid_shape(64, row_bias=1.0)
        assert (rows, cols) == (8, 8)

    def test_grid_shape_rejects(self):
        with pytest.raises(PartitionError):
            grid_shape(0)
        with pytest.raises(PartitionError):
            grid_shape(4, row_bias=0)

    def test_tasklet_shares(self):
        shares, active = tasklet_element_shares(50, 24)
        assert shares.sum() == 50
        assert shares.max() - shares.min() <= 1
        assert active == 24

    def test_tasklet_shares_fewer_elements(self):
        shares, active = tasklet_element_shares(5, 24)
        assert active == 5

    def test_imbalance_factor(self):
        assert imbalance_factor(np.array([1.0, 1.0])) == 1.0
        assert imbalance_factor(np.array([3.0, 1.0])) == pytest.approx(1.5)
        assert imbalance_factor(np.array([])) == 1.0


class TestCoverage:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("num_dpus", [1, 4, 16, 64])
    def test_every_nnz_exactly_once(self, strategy, num_dpus):
        matrix = sample_matrix()
        plan = strategy(matrix, num_dpus)
        assert plan.total_nnz == matrix.nnz

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_reassembly_equals_global_matvec(self, strategy):
        matrix = sample_matrix(3)
        plan = strategy(matrix, 16)
        rng = np.random.default_rng(5)
        x = rng.random(matrix.ncols)
        expected = spmv_dense(matrix, x)
        y = np.zeros(matrix.nrows)
        for p in plan.partitions:
            c0, c1 = p.col_range
            if p.global_rows:
                block = p.coo_block
                np.add.at(y, block.rows, block.values * x[block.cols])
            else:
                r0, r1 = p.row_range
                y[r0:r1] += spmv_dense(p.matrix, x[c0:c1])
        assert np.allclose(y, expected)

    def test_more_dpus_than_rows(self):
        matrix = sample_matrix(1, n=10)
        plan = rowwise(matrix, 64)
        assert plan.num_dpus <= 10
        assert plan.total_nnz == matrix.nnz


class TestPlanMetadata:
    def test_rowwise_no_merge(self):
        plan = rowwise(sample_matrix(), 8)
        assert not plan.needs_merge
        assert plan.grid is None

    def test_colwise_needs_merge(self):
        plan = colwise(sample_matrix(), 8)
        assert plan.needs_merge

    def test_grid2d_shape(self):
        plan = grid2d(sample_matrix(), 16)
        assert plan.grid is not None
        gr, gc = plan.grid
        assert gr * gc == 16
        assert plan.needs_merge == (gc > 1)

    def test_bounds_recorded(self):
        plan = grid2d(sample_matrix(), 16)
        assert plan.row_bounds is not None
        assert plan.col_bounds is not None
        assert plan.row_bounds[-1] == plan.shape[0]
        assert plan.col_bounds[-1] == plan.shape[1]

    def test_coo_nnz_balanced(self):
        plan = coo_nnz(sample_matrix(), 16)
        counts = plan.nnz_per_dpu()
        assert counts.max() - counts.min() <= 1
        assert all(p.global_rows for p in plan.partitions)

    def test_dcoo_even_tiles(self):
        plan = dcoo(sample_matrix(), 16)
        spans = {p.row_range[1] - p.row_range[0] for p in plan.partitions}
        assert len(spans) <= 2  # static equal-size rows (rounding)

    def test_nbytes_by_format(self):
        matrix = sample_matrix(4)
        for fmt, overhead in (("coo", 0), ("csr", 1), ("csc", 1)):
            plan = rowwise(matrix, 4, fmt)
            for p in plan.partitions:
                assert p.nbytes > 0
                assert p.fmt == fmt

    def test_mram_fit_validation(self):
        matrix = sample_matrix(5)
        plan = rowwise(matrix, 4)
        plan.validate_mram_fit(64 * 1024 * 1024)
        with pytest.raises(PartitionError):
            plan.validate_mram_fit(16)

    def test_lazy_matrix_conversion(self):
        plan = rowwise(sample_matrix(6), 4, "csc")
        block = plan.partitions[0]
        converted = block.matrix
        assert converted.nnz == block.nnz
        assert converted.to_dense().shape == (
            block.out_len, plan.shape[1]
        )


class TestErrors:
    def test_zero_dpus(self):
        with pytest.raises(PartitionError):
            rowwise(sample_matrix(), 0)

    def test_bad_format(self):
        with pytest.raises(PartitionError):
            rowwise(sample_matrix(), 4, "ellpack")

    def test_empty_matrix(self):
        with pytest.raises(PartitionError):
            rowwise(COOMatrix.empty(0), 4)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 100_000),
    st.sampled_from([1, 3, 8, 32]),
    st.sampled_from(["rowwise", "colwise", "grid2d", "coo_nnz", "dcoo"]),
)
def test_property_partition_coverage(seed, num_dpus, strategy_name):
    """Any strategy on any random matrix covers all non-zeros exactly."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 50))
    dense = (rng.random((n, n)) < 0.2) * 1.0
    matrix = COOMatrix.from_dense(dense)
    if matrix.nnz == 0:
        return
    strategy = {
        "rowwise": lambda: rowwise(matrix, num_dpus),
        "colwise": lambda: colwise(matrix, num_dpus),
        "grid2d": lambda: grid2d(matrix, num_dpus),
        "coo_nnz": lambda: coo_nnz(matrix, num_dpus),
        "dcoo": lambda: dcoo(matrix, num_dpus),
    }[strategy_name]
    plan = strategy()
    assert plan.total_nnz == matrix.nnz
