"""Shared fixtures for the test suite: small graphs and systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import COOMatrix
from repro.upmem import SystemConfig


def random_graph(
    n: int = 120,
    avg_degree: float = 5.0,
    seed: int = 0,
    dtype=np.int32,
    weights=None,
) -> COOMatrix:
    """A random directed graph for correctness tests."""
    rng = np.random.default_rng(seed)
    m = int(avg_degree * n)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    if weights == "random":
        w = rng.integers(1, 20, edges.shape[0]).astype(dtype)
        return COOMatrix.from_edges(edges, n, dtype=dtype, weights=w)
    return COOMatrix.from_edges(edges, n, dtype=dtype)


@pytest.fixture
def graph() -> COOMatrix:
    return random_graph()

@pytest.fixture
def weighted_graph() -> COOMatrix:
    return random_graph(weights="random")


@pytest.fixture
def float_graph() -> COOMatrix:
    g = random_graph()
    rng = np.random.default_rng(1)
    values = rng.uniform(0.1, 2.0, g.nnz).astype(np.float32)
    return COOMatrix(g.rows, g.cols, values, g.shape)


@pytest.fixture
def system() -> SystemConfig:
    return SystemConfig(num_dpus=64)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
