"""Tests for the analytic performance model and its simulator agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.upmem import (
    DpuConfig,
    InstructionProfile,
    InstrClass,
    RevolverPipeline,
    estimate_cycles,
    estimate_from_profiles,
    synthesize_stream,
)

IDEAL = DpuConfig(sustained_ipc=1.0)


def scalar_estimate(**kwargs):
    defaults = dict(
        slots_total=1000.0,
        slots_max_tasklet=100.0,
        dma_cycles_total=0.0,
        dma_cycles_max_tasklet=0.0,
        mutex_acquires=0.0,
        instructions_total=1000.0,
        active_tasklets=10,
        config=IDEAL,
    )
    defaults.update(kwargs)
    return estimate_cycles(**defaults)


class TestBounds:
    def test_issue_bound(self):
        """Balanced work across many tasklets is issue-limited."""
        est = scalar_estimate(
            slots_total=2400.0, slots_max_tasklet=100.0, active_tasklets=24,
        )
        # rf penalty adds ~8%
        assert 2400 <= est.max_cycles <= 2700

    def test_thread_bound(self):
        """One busy tasklet is paced by the 11-cycle dispatch gap."""
        est = scalar_estimate(
            slots_total=100.0,
            slots_max_tasklet=100.0,
            active_tasklets=1,
            instructions_total=100.0,
        )
        assert est.max_cycles >= 100 * 11

    def test_dma_extends_thread_bound(self):
        base = scalar_estimate(
            slots_total=100.0, slots_max_tasklet=100.0, active_tasklets=1,
        )
        with_dma = scalar_estimate(
            slots_total=100.0,
            slots_max_tasklet=100.0,
            active_tasklets=1,
            dma_cycles_total=5000.0,
            dma_cycles_max_tasklet=5000.0,
        )
        assert with_dma.max_cycles >= base.max_cycles + 4999

    def test_nonblocking_dma_ignores_exposure(self):
        cfg = DpuConfig(blocking_dma=False, sustained_ipc=1.0)
        est = scalar_estimate(
            dma_cycles_total=50_000.0,
            dma_cycles_max_tasklet=50_000.0,
            config=cfg,
        )
        assert est.max_cycles < 50_000

    def test_mutex_bound(self):
        est = scalar_estimate(mutex_acquires=100_000.0)
        # 100k acquires / 32 locks * 24-cycle sections
        assert est.max_cycles >= (100_000 / 32) * 24 - 1

    def test_sustained_ipc_derates_issue(self):
        ideal = scalar_estimate()
        derated = scalar_estimate(config=DpuConfig(sustained_ipc=0.25))
        assert derated.max_cycles == pytest.approx(ideal.max_cycles / 0.25,
                                                   rel=0.05)


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        est = scalar_estimate(
            dma_cycles_total=2000.0,
            dma_cycles_max_tasklet=400.0,
            mutex_acquires=50.0,
        )
        assert sum(est.breakdown_fractions().values()) == pytest.approx(1.0)

    def test_rf_disabled(self):
        cfg = DpuConfig(rf_structural_hazards=False, sustained_ipc=1.0)
        est = scalar_estimate(config=cfg)
        assert float(np.sum(est.idle_rf)) == 0.0

    def test_vectorized_over_dpus(self):
        est = estimate_cycles(
            slots_total=np.array([100.0, 200.0, 50.0]),
            slots_max_tasklet=np.array([10.0, 20.0, 5.0]),
            dma_cycles_total=np.zeros(3),
            dma_cycles_max_tasklet=np.zeros(3),
            mutex_acquires=np.zeros(3),
            instructions_total=np.array([100.0, 200.0, 50.0]),
            active_tasklets=np.array([10, 10, 10]),
            config=IDEAL,
        )
        assert est.cycles.shape == (3,)
        assert est.max_cycles == float(est.cycles[1])

    def test_active_threads_bounded(self):
        est = scalar_estimate(active_tasklets=16)
        assert 0 < float(est.avg_active_threads) <= 16


class TestProfileEstimates:
    def test_from_profiles(self):
        profile = InstructionProfile()
        profile.add(InstrClass.ARITH, 500)
        profile.add(InstrClass.LOADSTORE, 300)
        est = estimate_from_profiles([profile] * 8, config=IDEAL)
        assert est.max_cycles >= 800 * 8  # at least the issue bound

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_from_profiles([])


class TestSimulatorAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_within_factor_two(self, seed):
        rng = np.random.default_rng(seed)
        profile = InstructionProfile()
        profile.add(InstrClass.ARITH, int(rng.integers(200, 1000)))
        profile.add(InstrClass.LOADSTORE, int(rng.integers(100, 600)))
        profile.add(InstrClass.CONTROL, int(rng.integers(20, 200)))
        profile.add_dma(int(rng.integers(0, 20_000)), int(rng.integers(1, 10)))
        tasklets = int(rng.integers(2, 12))
        streams = [
            synthesize_stream(profile, seed=seed + t) for t in range(tasklets)
        ]
        sim = RevolverPipeline(IDEAL).run(streams)
        est = estimate_from_profiles([profile] * tasklets, config=IDEAL)
        ratio = est.max_cycles / sim.cycles
        assert 0.5 < ratio < 2.0, ratio
