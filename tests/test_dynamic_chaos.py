"""Churn chaos: faults and crash/resume during incremental repair.

Three layers of adversity, all seeded:

* **Fault-injected repair** — incremental BFS/CC/PPR under
  ``FaultPlan.uniform(0.05)`` must stay bit-identical (PPR: bit-identical
  too — the resilient executor replays corrupted legs, it never changes
  values) to the fault-free repair.
* **Mid-churn crash/resume** — a checkpointed repair killed between
  iterations resumes to the same answer as an uninterrupted run.
* **Serving interleavings** — seeded insert/delete/query mixes through
  :class:`GraphService` with write-path fault injection: SLO accounting
  closes, retried writes apply exactly once, and the final resident
  matrix equals the dict-model oracle.

``REPRO_DYNAMIC_CHAOS_SEED`` re-seeds the soak case for overnight runs.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from conftest import random_graph

from repro.algorithms import bfs, connected_components, ppr
from repro.checkpoint import CheckpointConfig, MemoryCheckpointStore
from repro.checkpoint.chaos import CrashSchedule, SimulatedCrash
from repro.dynamic import (
    MutableGraph,
    bfs_repair,
    cc_repair,
    delta_ppr,
    random_edge_batch,
)
from repro.faults import FaultPlan
from repro.serving import GraphService, QueryRequest, QueryStatus
from repro.serving.request import MUTATE
from repro.upmem.config import SystemConfig
from test_dynamic import (
    assert_matrices_identical,
    oracle_apply,
    oracle_edges,
    oracle_matrix,
)

pytestmark = pytest.mark.dynamic

NUM_DPUS = 32
SOAK_SEED = int(os.environ.get("REPRO_DYNAMIC_CHAOS_SEED", "0"))


@pytest.fixture(scope="module")
def system():
    return SystemConfig(num_dpus=64)


def _churned(seed, n=50):
    """(mutable, batch, snapshot, prev answers) after one seeded batch."""
    base = random_graph(n=n, avg_degree=4.0, seed=300 + seed)
    mutable = MutableGraph(base)
    system = SystemConfig(num_dpus=64)
    prev = {
        "bfs": bfs(mutable.snapshot(), 0, system, NUM_DPUS).values,
        "cc": connected_components(
            mutable.snapshot(), system, NUM_DPUS
        ).values,
        "ppr": ppr(mutable.snapshot(), 0, system, NUM_DPUS).values,
    }
    batch = random_edge_batch(
        np.random.default_rng(seed), n, num_inserts=6, num_deletes=5,
        edge_pool=mutable.edge_array(),
    )
    mutable.apply(batch)
    return mutable, batch, mutable.snapshot(), prev


class TestFaultInjectedRepair:
    @pytest.mark.parametrize("seed", (SOAK_SEED, 3, 7))
    def test_repairs_identical_under_faults(self, seed, system):
        """uniform(0.05) faults during repair never change a value."""
        _, batch, snap, prev = _churned(seed)
        plan = FaultPlan.uniform(0.05, seed=seed)

        clean = bfs_repair(snap, 0, system, NUM_DPUS,
                           prev_levels=prev["bfs"], batch=batch)
        faulty = bfs_repair(snap, 0, system, NUM_DPUS,
                            prev_levels=prev["bfs"], batch=batch,
                            fault_plan=plan)
        assert clean.values.tobytes() == faulty.values.tobytes(), \
            f"bfs repair diverged under faults (seed {seed})"

        clean = cc_repair(snap, system, NUM_DPUS,
                          prev_labels=prev["cc"], batch=batch)
        faulty = cc_repair(snap, system, NUM_DPUS,
                           prev_labels=prev["cc"], batch=batch,
                           fault_plan=plan)
        assert clean.values.tobytes() == faulty.values.tobytes(), \
            f"cc repair diverged under faults (seed {seed})"

        clean = delta_ppr(snap, 0, system, NUM_DPUS, prev_rank=prev["ppr"])
        faulty = delta_ppr(snap, 0, system, NUM_DPUS, prev_rank=prev["ppr"],
                           fault_plan=plan)
        assert clean.values.tobytes() == faulty.values.tobytes(), \
            f"delta-ppr diverged under faults (seed {seed})"


class TestCrashResumeMidChurn:
    def _multi_iteration_case(self, system):
        """First seed whose fault-free BFS repair runs >= 3 iterations
        (so a crash at iteration 1 lands mid-repair)."""
        for seed in range(24):
            mutable, batch, snap, prev = _churned(seed)
            probe = bfs_repair(snap, 0, system, NUM_DPUS,
                               prev_levels=prev["bfs"], batch=batch)
            if probe.num_iterations >= 3:
                return seed, batch, snap, prev, probe
        raise AssertionError("no seed produced a >=3 iteration repair")

    def test_bfs_repair_crash_resume(self, system):
        seed, batch, snap, prev, reference = \
            self._multi_iteration_case(system)
        store = MemoryCheckpointStore()
        with pytest.raises(SimulatedCrash):
            bfs_repair(
                snap, 0, system, NUM_DPUS,
                prev_levels=prev["bfs"], batch=batch,
                checkpoint=CheckpointConfig(
                    store=store,
                    crash_schedule=CrashSchedule(crash_iterations=[1]),
                ),
            )
        resumed = bfs_repair(
            snap, 0, system, NUM_DPUS,
            prev_levels=prev["bfs"], batch=batch,
            checkpoint=CheckpointConfig(store=store),
        )
        assert resumed.checkpoint["restore_count"] == 1
        assert resumed.values.tobytes() == reference.values.tobytes(), \
            f"crash/resume diverged (seed {seed})"

    def test_delta_ppr_crash_resume(self, system):
        seed = SOAK_SEED
        _, _, snap, prev = _churned(seed)
        reference = delta_ppr(snap, 0, system, NUM_DPUS,
                              prev_rank=prev["ppr"])
        assert reference.num_iterations >= 3, f"seed {seed}"
        store = MemoryCheckpointStore()
        with pytest.raises(SimulatedCrash):
            delta_ppr(
                snap, 0, system, NUM_DPUS, prev_rank=prev["ppr"],
                checkpoint=CheckpointConfig(
                    store=store,
                    crash_schedule=CrashSchedule(crash_iterations=[2]),
                ),
            )
        resumed = delta_ppr(
            snap, 0, system, NUM_DPUS, prev_rank=prev["ppr"],
            checkpoint=CheckpointConfig(store=store),
        )
        assert resumed.values.tobytes() == reference.values.tobytes(), \
            f"ppr crash/resume diverged (seed {seed})"


class TestServingChurnChaos:
    @pytest.mark.parametrize("seed", (SOAK_SEED, 5))
    def test_interleaved_writes_and_reads_under_faults(self, seed):
        """Seeded insert/delete/query interleaving with write-path fault
        injection: every request resolves exactly once, retried writes
        apply exactly once, and the resident matrix matches the oracle."""
        n = 60
        base = random_graph(n=n, avg_degree=4.0, seed=400 + seed)
        system = SystemConfig(num_dpus=64)
        service = GraphService(system, NUM_DPUS, max_batch=4)
        service.add_graph(
            "g", base, fault_plan=FaultPlan.uniform(0.05, seed=seed)
        )
        edges = oracle_edges(base)
        rng = np.random.default_rng(seed)
        requests = []
        for i in range(24):
            roll = rng.random()
            if roll < 0.4:
                batch = random_edge_batch(
                    rng, n, num_inserts=4, num_deletes=3
                )
                requests.append(QueryRequest(
                    tenant=f"tenant-{i % 3}", graph="g",
                    algorithm=MUTATE, edges=batch,
                ))
            else:
                requests.append(QueryRequest(
                    tenant=f"tenant-{i % 3}", graph="g",
                    algorithm=str(rng.choice(("bfs", "cc"))),
                    source=int(rng.integers(n)),
                ))

        async def main():
            async with service:
                return await asyncio.gather(
                    *(service.submit_outcome(r) for r in requests)
                )

        results = asyncio.run(main())
        assert len(results) == len(requests)
        completed_writes = 0
        for request, result in zip(requests, results):
            assert result.status in (
                QueryStatus.COMPLETED, QueryStatus.FAILED
            ), f"seed {seed}: unexpected {result.status}"
            if request.algorithm == MUTATE and \
                    result.status is QueryStatus.COMPLETED:
                completed_writes += 1
                oracle_apply(edges, request.edges, base.values.dtype)
        mutable = service.graph("g").mutable
        assert mutable.version == completed_writes, f"seed {seed}"
        assert_matrices_identical(
            mutable.snapshot(),
            oracle_matrix(edges, base.shape, base.values.dtype),
            f"seed {seed}: resident matrix diverged from oracle",
        )
        assert service.slo_accounting_closes()
