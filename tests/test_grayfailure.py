"""Gray-failure (fail-slow) resilience tests: PR 10.

Covers the seeded fail-slow draw families, the P² adaptive straggler
deadline, speculative tile hedging with deterministic tie-breaking, the
slow-quarantine -> probation -> release state machine, decorrelated
retry jitter, and the seeded chaos soak driven by the
``REPRO_STRAGGLER_SEED`` environment variable (the CI matrix sweeps it).

The overarching contract under test: gray failures cost simulated time,
**never correctness** — every algorithm's output stays bit-identical to
the fault-free run — and with every fail-slow knob at its default the
fault layer is bit-identical to the fail-stop-only layer it extends.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms import (
    bfs,
    betweenness_centrality,
    connected_components,
    pagerank,
    ppr,
    sssp,
    sssp_delta_stepping,
)
from repro.errors import UpmemError
from repro.faults import (
    AdaptiveTimeout,
    FaultInjector,
    FaultKind,
    FaultPlan,
    GrayFailureModel,
    P2Quantile,
    ResilientDpuSet,
)
from repro.faults.gray import GRAY_SEED_SALT, JITTER_SEED_SALT, derive_seed
from repro.sparse import COOMatrix
from repro.upmem import Dpu, DpuSet, SystemConfig
from repro.upmem.transfer import TransferModel

pytestmark = pytest.mark.faults

SYSTEM = SystemConfig(num_dpus=64)

#: Seed swept by the CI straggler-chaos matrix (0 / 3 / 7).
SOAK_SEED = int(os.environ.get("REPRO_STRAGGLER_SEED", "0"))


def small_graph(n=96, seed=3, weighted=False):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=4 * n)
    dst = (src + rng.integers(1, n, size=4 * n)) % n
    edges = list({(int(u), int(v)) for u, v in zip(src, dst) if u != v})
    matrix = COOMatrix.from_edges(edges, num_nodes=n)
    if weighted:
        from repro.datasets import add_weights

        matrix = add_weights(matrix, rng=rng)
    return matrix


def make_rset(num_dpus=4, plan=None, system=None):
    system = system or SystemConfig(num_dpus=64)
    plan = plan or FaultPlan()
    transfer = TransferModel(system)
    dpus = [Dpu(i, system.dpu) for i in range(num_dpus)]
    inner = DpuSet(dpus, transfer, injector=FaultInjector(plan))
    return ResilientDpuSet(inner, plan)


class ScriptedGray(GrayFailureModel):
    """Gray model replaying fixed per-launch multiplier rows."""

    def __init__(self, plan, num_dpus, dpus_per_rank, script):
        super().__init__(plan, num_dpus, dpus_per_rank)
        self._script = [np.asarray(row, dtype=np.float64) for row in script]

    def draw_launch(self, kernel_seconds):
        mult = (
            self._script.pop(0) if self._script
            else np.ones(self.num_dpus, dtype=np.float64)
        )
        return kernel_seconds * mult, mult


def scripted_gray_rset(script, num_dpus=4, **plan_overrides):
    """An rset whose gray model replays ``script`` (rows of multipliers).

    The plan arms ``dpu_slow_rate`` only so the fail-stop injector stays
    silent; the scripted model then replaces the seeded one.
    """
    plan = FaultPlan(seed=5, dpu_slow_rate=0.5, **plan_overrides)
    rset = make_rset(num_dpus, plan)
    rset.gray = ScriptedGray(
        plan, num_dpus, rset.transfer.system.dpus_per_rank, script
    )
    return rset


def roundtrip_launches(rset, launches=1, kernel_seconds=1e-4):
    n = 8 * rset.num_dpus
    shards = np.array_split(np.arange(n, dtype=np.int64), rset.num_dpus)
    rset.scatter_arrays("x", shards)
    for _ in range(launches):
        rset.launch("y", lambda i: shards[i] * 2, kernel_seconds)
    gathered, _ = rset.gather_arrays("y")
    for got, want in zip(gathered, shards):
        assert np.array_equal(got, want * 2)
    return rset.log


class TestGrayPlan:
    def test_defaults_leave_fail_slow_off(self):
        plan = FaultPlan()
        assert not plan.fail_slow_enabled
        assert not plan.enabled
        # and armed fail-stop alone never constructs the gray machinery
        rset = make_rset(4, FaultPlan.uniform(0.05, seed=1))
        assert rset.gray is None
        assert rset.adaptive is None
        assert rset._jitter_rng is None

    def test_with_fail_slow_arms_and_scales(self):
        plan = FaultPlan(seed=9).with_fail_slow(0.08)
        assert plan.fail_slow_enabled and plan.enabled
        assert plan.dpu_slow_rate == 0.08
        assert plan.degraded_dpu_rate == pytest.approx(0.01)
        assert plan.degraded_rank_rate == pytest.approx(0.08 / 64)
        assert plan.dma_retry_rate == 0.08
        assert "slow=0.08" in plan.describe()
        assert "hedging=on" in plan.describe()

    @pytest.mark.parametrize("field, value", [
        ("dpu_slow_rate", 1.5),
        ("degraded_dpu_rate", -0.1),
        ("dma_retry_rate", 2.0),
        ("backoff_jitter", 1.1),
        ("straggler_quantile", 1.0),
        ("straggler_margin", 0.5),
        ("degraded_factor", 0.9),
        ("probation_factor", 0.0),
        ("timeout_cold_start", 0),
        ("slow_quarantine_after", 0),
        ("probation_launches", 0),
    ])
    def test_validation_rejects_bad_knobs(self, field, value):
        with pytest.raises(UpmemError):
            FaultPlan(**{field: value})

    def test_floor_above_ceiling_rejected(self):
        with pytest.raises(UpmemError):
            FaultPlan(straggler_floor_s=1.0, straggler_ceiling_s=0.5)

    def test_gray_stream_independent_of_fail_stop(self):
        # arming fail-slow must not perturb the fail-stop schedule:
        # the gray model draws from its own salted stream
        assert derive_seed(42, GRAY_SEED_SALT) != 42
        assert derive_seed(42, GRAY_SEED_SALT) != derive_seed(
            42, JITTER_SEED_SALT
        )
        matrix = small_graph()
        stop_only = FaultPlan.uniform(0.05, seed=42)
        both = stop_only.with_fail_slow(0.05)
        a = bfs(matrix, 0, SYSTEM, 64, fault_plan=stop_only)
        b = bfs(matrix, 0, SYSTEM, 64, fault_plan=both)
        stop_kinds = {"crash", "hang", "bitflip", "corruption",
                      "rank-failure"}
        sched_a = [e for e in a.fault_log.schedule() if e[0] in stop_kinds]
        sched_b = [e for e in b.fault_log.schedule() if e[0] in stop_kinds]
        assert sched_a == sched_b, (
            "fail-stop schedule changed when fail-slow armed (seed=42)"
        )


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.add(x)
        assert est.value() == pytest.approx(3.0)

    def test_empty_returns_none(self):
        assert P2Quantile(0.9).value() is None

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_tracks_lognormal_stream(self, q):
        rng = np.random.default_rng(7)
        data = rng.lognormal(1.0, 0.75, 4000)
        est = P2Quantile(q)
        for x in data:
            est.add(x)
        true = float(np.quantile(data, q))
        assert est.value() == pytest.approx(true, rel=0.15), (
            f"P2 q={q} drifted from the true quantile (seed=7)"
        )

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestAdaptiveTimeout:
    def test_cold_start_returns_none(self):
        plan = FaultPlan(timeout_cold_start=4)
        adaptive = AdaptiveTimeout(plan)
        for _ in range(3):
            adaptive.observe("spmv", 1e-4)
        assert adaptive.deadline("spmv") is None
        adaptive.observe("spmv", 1e-4)
        assert adaptive.deadline("spmv") == pytest.approx(
            max(1e-4 * plan.straggler_margin, plan.straggler_floor_s)
        )

    def test_deadline_clamped_to_floor_and_ceiling(self):
        plan = FaultPlan(timeout_cold_start=1)
        adaptive = AdaptiveTimeout(plan)
        adaptive.observe("tiny", 1e-9)
        assert adaptive.deadline("tiny") == plan.straggler_floor_s
        adaptive.observe("huge", 10.0)
        assert adaptive.deadline("huge") == plan.straggler_ceiling_s

    def test_regions_are_independent(self):
        plan = FaultPlan(timeout_cold_start=1)
        adaptive = AdaptiveTimeout(plan)
        adaptive.observe("a", 1e-3)
        assert adaptive.deadline("b") is None

    def test_adaptive_hang_timeout(self):
        # cold: a hang charges the fixed plan.timeout_s.  Warm (after
        # timeout_cold_start samples): the learned deadline, which for a
        # 1e-4 s kernel is margin * 1e-4 << timeout_s.
        plan = FaultPlan(
            dpu_hang_rate=0.5, adaptive_timeout=True,
            timeout_cold_start=2, quarantine_after=10, seed=1,
        )
        script = [
            FaultKind.HANG, None, None,   # launch 1: DPU 0 hangs, retry ok
            None, None,                   # launch 2: clean
            FaultKind.HANG, None, None,   # launch 3: DPU 0 hangs again
        ]
        rset = make_rset(2, plan)
        from test_faults import ScriptedInjector

        rset.inner.injector = ScriptedInjector(plan, launch_script=script)
        rset.injector = rset.inner.injector
        shards = [np.arange(4), np.arange(4, 8)]
        rset.scatter_arrays("x", shards)
        for _ in range(3):
            rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        hangs = [e for e in rset.log.events if e.kind == "hang"]
        assert len(hangs) == 2, f"expected 2 scripted hangs (seed={plan.seed})"
        cold, warm = hangs
        assert cold.recovery_s >= plan.timeout_s
        assert warm.recovery_s < plan.timeout_s, (
            "warm hang should be priced by the learned deadline, "
            f"not timeout_s={plan.timeout_s}"
        )

    def test_fixed_timeout_without_adaptive_flag(self):
        # same script, adaptive_timeout left at its default False: both
        # hangs cost the fixed timeout even after the estimator warms
        plan = FaultPlan(
            dpu_hang_rate=0.5, timeout_cold_start=2,
            quarantine_after=10, seed=1,
        )
        script = [
            FaultKind.HANG, None, None,
            None, None,
            FaultKind.HANG, None, None,
        ]
        rset = make_rset(2, plan)
        from test_faults import ScriptedInjector

        rset.inner.injector = ScriptedInjector(plan, launch_script=script)
        rset.injector = rset.inner.injector
        shards = [np.arange(4), np.arange(4, 8)]
        rset.scatter_arrays("x", shards)
        for _ in range(3):
            rset.launch("y", lambda i: shards[i], kernel_seconds=1e-4)
        hangs = [e for e in rset.log.events if e.kind == "hang"]
        assert len(hangs) == 2
        assert all(e.recovery_s >= plan.timeout_s for e in hangs)


class TestHedging:
    KERNEL_S = 1e-4

    def test_hedge_wins_against_extreme_straggler(self):
        # DPU 0 runs 100x slow; threshold (cold) = timeout_s = 2e-3.
        # The hedge finishes at threshold + kernel ~ 2.1e-3 << 1e-2.
        rset = scripted_gray_rset([[100.0, 1.0, 1.0, 1.0]])
        log = roundtrip_launches(rset, kernel_seconds=self.KERNEL_S)
        assert log.num_hedges_won == 1
        assert log.num_stragglers == 1
        won = next(e for e in log.events if e.action == "hedge-won")
        assert won.dpu_id == 0
        waits = [e for e in log.events if e.kind == "straggler-wait"]
        assert len(waits) == 1
        # launch completes with the hedge, not the 100x original
        assert waits[0].recovery_s < 100.0 * self.KERNEL_S
        assert rset.gray.wasted_s > 0

    def test_hedge_loses_close_race_and_accounts_waste(self):
        # exec 2.05e-3 barely blows the 2e-3 deadline; the hedge would
        # land at 2.1e-3, so the original wins and the hedge is wasted
        rset = scripted_gray_rset([[20.5, 1.0, 1.0, 1.0]])
        log = roundtrip_launches(rset, kernel_seconds=self.KERNEL_S)
        assert log.num_hedges_won == 0
        assert log.num_hedges_wasted == 1
        assert rset.gray.hedges_lost == 1
        assert rset.gray.wasted_s == pytest.approx(
            20.5 * self.KERNEL_S - 2e-3
        )

    def test_tie_goes_to_the_original(self):
        # hedge_done == exec_s exactly (1e-3 * 4.0 == 3e-3 + 1e-3 in
        # IEEE doubles): first-completion-wins breaks the tie
        # deterministically toward the original (strict <)
        kernel_s = 1e-3
        rset = scripted_gray_rset([[4.0, 1.0, 1.0, 1.0]])
        plan = rset.plan
        threshold = max(plan.timeout_s, kernel_s * plan.straggler_margin)
        assert 4.0 * kernel_s == threshold + 1.0 * kernel_s
        log = roundtrip_launches(rset, kernel_seconds=kernel_s)
        assert log.num_hedges_won == 0
        assert log.num_hedges_wasted == 1

    def test_no_hedging_still_bounds_nothing_but_detects(self):
        rset = scripted_gray_rset([[100.0, 1.0, 1.0, 1.0]], hedging=False)
        log = roundtrip_launches(rset, kernel_seconds=self.KERNEL_S)
        actions = {e.action for e in log.events}
        assert "straggler" in actions
        assert "hedge-won" not in actions and "hedge-lost" not in actions
        waits = [e for e in log.events if e.kind == "straggler-wait"]
        # without hedging the launch waits out the full 100x exec time
        assert waits[0].recovery_s == pytest.approx(99.0 * self.KERNEL_S)

    def test_straggler_wait_prices_the_whole_overhead(self):
        # invariant: sum(recovery_s) == breakdown delta for pure
        # fail-slow plans — the single straggler-wait event carries it
        rset = scripted_gray_rset([[100.0, 1.0, 1.0, 1.0]])
        log = roundtrip_launches(rset, kernel_seconds=self.KERNEL_S)
        waits = [e for e in log.events if e.kind == "straggler-wait"]
        others = [e for e in log.events if e.kind != "straggler-wait"]
        assert all(e.recovery_s == 0.0 for e in others)
        assert log.recovery_seconds == pytest.approx(
            sum(e.recovery_s for e in waits)
        )

    def test_seeded_hedging_is_deterministic(self):
        plan = FaultPlan(seed=13).with_fail_slow(0.2)

        def run():
            rset = make_rset(8, plan)
            return roundtrip_launches(
                rset, launches=4, kernel_seconds=self.KERNEL_S
            )

        a, b = run(), run()
        assert a.schedule() == b.schedule(), (
            "same seed must replay the same gray schedule (seed=13)"
        )
        assert a.recovery_seconds == pytest.approx(b.recovery_seconds)


class TestSlowQuarantineProbation:
    KERNEL_S = 1e-4
    SLOW = [50.0, 1.0, 1.0, 1.0]
    CLEAN = [1.0, 1.0, 1.0, 1.0]

    def test_quarantine_probation_release_cycle(self):
        # 3 consecutive straggler launches -> slow-quarantine; then 2
        # clean probes -> release (defaults: after=3, probes=2)
        script = [self.SLOW] * 3 + [self.CLEAN] * 2
        rset = scripted_gray_rset(script)
        log = roundtrip_launches(
            rset, launches=5, kernel_seconds=self.KERNEL_S
        )
        actions = [
            e.action for e in log.events if e.kind == "fail-slow"
            and e.dpu_id == 0
        ]
        assert actions.count("slow-quarantine") == 1
        assert actions.count("probation-release") == 1
        assert actions.index("slow-quarantine") < actions.index(
            "probation-release"
        )
        assert 0 not in rset.gray.slow_quarantined
        assert 0 not in log.slow_quarantined
        assert rset.gray.streak[0] == 0

    def test_dirty_probe_resets_probation(self):
        # quarantine, one clean probe, then a dirty probe: the release
        # needs 2 *consecutive* clean probes, so DPU 0 stays quarantined
        script = [self.SLOW] * 3 + [self.CLEAN, self.SLOW, self.CLEAN]
        rset = scripted_gray_rset(script)
        log = roundtrip_launches(
            rset, launches=6, kernel_seconds=self.KERNEL_S
        )
        assert 0 in rset.gray.slow_quarantined
        assert 0 in log.slow_quarantined
        assert not any(
            e.action == "probation-release" for e in log.events
        )

    def test_quarantined_tile_is_pre_hedged(self):
        # while slow-quarantined, DPU 0's tile rides a healthy peer: the
        # 50x multiplier on launch 4 must not bound the launch
        script = [self.SLOW] * 4
        rset = scripted_gray_rset(script)
        log = roundtrip_launches(
            rset, launches=4, kernel_seconds=self.KERNEL_S
        )
        waits = [e for e in log.events if e.kind == "straggler-wait"]
        # launch 4 happens with DPU 0 in probation: its completion is
        # serialized behind a healthy peer (~2 kernels), not 50 kernels
        assert waits[-1].recovery_s < 10 * self.KERNEL_S
        # and no new straggler detection fires for the pre-hedged DPU
        strag4 = [
            e for e in log.events
            if e.action in ("straggler", "hedge-won", "hedge-lost")
        ]
        assert len(strag4) == 3

    def test_results_stay_exact_throughout(self):
        # the whole cycle returns validated, exact shards every launch
        script = [self.SLOW] * 3 + [self.CLEAN] * 2
        rset = scripted_gray_rset(script)
        roundtrip_launches(rset, launches=5, kernel_seconds=self.KERNEL_S)
        # roundtrip_launches asserts gathered == expected internally


class TestBackoffJitter:
    def test_jitter_bounds_and_determinism(self):
        plan = FaultPlan(
            transfer_corruption_rate=0.1, backoff_jitter=0.5, seed=21
        )
        a = make_rset(4, plan)
        b = make_rset(4, plan)
        xs = [a._jitter(1.0) for _ in range(50)]
        ys = [b._jitter(1.0) for _ in range(50)]
        assert xs == ys, "same plan seed must draw the same jitter stream"
        assert all(0.5 <= x <= 1.0 for x in xs)
        assert len(set(xs)) > 1, "jitter should actually vary"

    def test_zero_jitter_is_identity(self):
        rset = make_rset(4, FaultPlan(transfer_corruption_rate=0.1))
        assert rset._jitter_rng is None
        assert rset._jitter(3.5) == 3.5

    def test_jittered_recovery_stays_reproducible(self):
        plan = FaultPlan(
            transfer_corruption_rate=0.3, backoff_jitter=0.5, seed=4
        )

        def run():
            rset = make_rset(8, plan)
            return roundtrip_launches(rset)

        a, b = run(), run()
        assert a.schedule() == b.schedule()
        assert a.recovery_seconds == pytest.approx(b.recovery_seconds)

    def test_jitter_shrinks_vs_legacy_backoff(self):
        base = FaultPlan(transfer_corruption_rate=0.3, seed=4)
        jittered = FaultPlan(
            transfer_corruption_rate=0.3, backoff_jitter=0.5, seed=4
        )
        a = roundtrip_launches(make_rset(8, base))
        b = roundtrip_launches(make_rset(8, jittered))
        assert a.schedule() == b.schedule(), (
            "jitter must not change the fault schedule, only its pricing"
        )
        assert b.recovery_seconds <= a.recovery_seconds


class TestAlgorithmsUnderGrayFailure:
    """All seven algorithms, bit-identical at dpu_slow_rate=0.05."""

    PLAN = FaultPlan(seed=11).with_fail_slow(0.05)

    def _assert_identical(self, name, clean, faulty):
        assert clean.values.tobytes() == faulty.values.tobytes(), (
            f"{name} not bit-identical under fail-slow "
            f"(seed={self.PLAN.seed}, slow_rate={self.PLAN.dpu_slow_rate})"
        )
        assert clean.fault_log is None
        assert faulty.fault_log is not None

    def test_bfs(self):
        m = small_graph()
        self._assert_identical(
            "bfs", bfs(m, 0, SYSTEM, 64),
            bfs(m, 0, SYSTEM, 64, fault_plan=self.PLAN),
        )

    def test_sssp(self):
        m = small_graph(weighted=True)
        self._assert_identical(
            "sssp", sssp(m, 0, SYSTEM, 64),
            sssp(m, 0, SYSTEM, 64, fault_plan=self.PLAN),
        )

    def test_ppr(self):
        m = small_graph()
        self._assert_identical(
            "ppr", ppr(m, 0, SYSTEM, 64),
            ppr(m, 0, SYSTEM, 64, fault_plan=self.PLAN),
        )

    def test_pagerank(self):
        m = small_graph()
        self._assert_identical(
            "pagerank", pagerank(m, SYSTEM, 64),
            pagerank(m, SYSTEM, 64, fault_plan=self.PLAN),
        )

    def test_connected_components(self):
        m = small_graph()
        self._assert_identical(
            "cc", connected_components(m, SYSTEM, 64),
            connected_components(m, SYSTEM, 64, fault_plan=self.PLAN),
        )

    def test_betweenness_centrality(self):
        m = small_graph()
        sources = [0, 5, 11]
        self._assert_identical(
            "bc", betweenness_centrality(m, sources, SYSTEM, 64),
            betweenness_centrality(
                m, sources, SYSTEM, 64, fault_plan=self.PLAN
            ),
        )

    def test_delta_stepping(self):
        m = small_graph(weighted=True)
        self._assert_identical(
            "delta-stepping", sssp_delta_stepping(m, 0, SYSTEM, 64),
            sssp_delta_stepping(m, 0, SYSTEM, 64, fault_plan=self.PLAN),
        )

    def test_overhead_is_priced_not_free(self):
        m = small_graph()
        clean = bfs(m, 0, SYSTEM, 64)
        faulty = bfs(m, 0, SYSTEM, 64, fault_plan=self.PLAN)
        delta = faulty.breakdown.total - clean.breakdown.total
        assert delta > 0, "stragglers must cost simulated time"
        assert delta == pytest.approx(
            faulty.fault_log.recovery_seconds, rel=1e-9
        ), "breakdown delta must equal the logged recovery time"


class TestZeroRateIdentity:
    """All new knobs at defaults => bit-identical to the PR 9 layer."""

    def test_explicit_zero_gray_matches_plain_fail_stop(self):
        m = small_graph()
        old = FaultPlan.uniform(0.05, seed=42)
        explicit = FaultPlan.uniform(
            0.05, seed=42, dpu_slow_rate=0.0, degraded_dpu_rate=0.0,
            degraded_rank_rate=0.0, dma_retry_rate=0.0, backoff_jitter=0.0,
        )
        a = bfs(m, 0, SYSTEM, 64, fault_plan=old)
        b = bfs(m, 0, SYSTEM, 64, fault_plan=explicit)
        assert a.values.tobytes() == b.values.tobytes()
        assert a.fault_log.schedule() == b.fault_log.schedule()
        assert a.breakdown.total == b.breakdown.total

    def test_gray_machinery_not_built_when_disarmed(self):
        rset = make_rset(4, FaultPlan.uniform(0.05, seed=1))
        assert rset.gray is None and rset.adaptive is None

    def test_adaptive_alone_without_gray_rates(self):
        plan = FaultPlan(dpu_hang_rate=0.1, adaptive_timeout=True, seed=2)
        rset = make_rset(4, plan)
        assert rset.gray is None
        assert rset.adaptive is not None


class TestStragglerSoak:
    """Seeded chaos soak; CI sweeps REPRO_STRAGGLER_SEED over 0/3/7."""

    PLAN = FaultPlan.uniform(0.03, seed=SOAK_SEED).with_fail_slow(0.05)

    def test_mixed_fault_soak_stays_exact(self):
        m = small_graph(n=128, seed=SOAK_SEED + 1)
        for name, run_algo in (
            ("bfs", lambda p: bfs(m, 0, SYSTEM, 64, fault_plan=p)),
            ("pagerank", lambda p: pagerank(m, SYSTEM, 64, fault_plan=p)),
            ("cc", lambda p: connected_components(
                m, SYSTEM, 64, fault_plan=p)),
        ):
            clean = run_algo(None)
            faulty = run_algo(self.PLAN)
            assert clean.values.tobytes() == faulty.values.tobytes(), (
                f"{name} diverged under mixed chaos "
                f"(REPRO_STRAGGLER_SEED={SOAK_SEED})"
            )

    def test_soak_schedule_is_reproducible(self):
        m = small_graph(n=128, seed=SOAK_SEED + 1)
        a = bfs(m, 0, SYSTEM, 64, fault_plan=self.PLAN)
        b = bfs(m, 0, SYSTEM, 64, fault_plan=self.PLAN)
        assert a.fault_log.schedule() == b.fault_log.schedule(), (
            f"non-reproducible soak (REPRO_STRAGGLER_SEED={SOAK_SEED})"
        )

    def test_pure_fail_slow_soak_accounting_closes(self):
        plan = FaultPlan(seed=SOAK_SEED).with_fail_slow(0.05)
        m = small_graph(n=128, seed=SOAK_SEED + 1)
        clean = bfs(m, 0, SYSTEM, 64)
        slow = bfs(m, 0, SYSTEM, 64, fault_plan=plan)
        assert clean.values.tobytes() == slow.values.tobytes()
        delta = slow.breakdown.total - clean.breakdown.total
        assert delta == pytest.approx(
            slow.fault_log.recovery_seconds, rel=1e-9, abs=1e-15
        ), f"time accounting leak (REPRO_STRAGGLER_SEED={SOAK_SEED})"
