"""Tests for JSON export and the scaling study."""

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    DatasetCache,
    ExperimentConfig,
    export_json,
    load_json,
    result_to_dict,
    run_fig2,
    run_scaling_study,
)
from repro.experiments.scaling import ScalingPoint, ScalingResult
from repro.types import EnergyReport, PhaseBreakdown

TINY = ExperimentConfig(scale=0.01, num_dpus=64, datasets=("A302",))


class TestExport:
    def test_roundtrip_simple_result(self, tmp_path):
        result = ScalingResult(
            dataset="A302",
            points=[
                ScalingPoint(0.1, 100, 500, 0.01, 0.005),
                ScalingPoint(0.2, 200, 1000, 0.03, 0.006),
            ],
        )
        path = export_json(result, tmp_path / "scaling.json")
        loaded = load_json(path)
        assert loaded["dataset"] == "A302"
        assert len(loaded["points"]) == 2
        assert loaded["points"][0]["num_nodes"] == 100

    def test_converts_breakdowns_and_energy(self):
        @__import__("dataclasses").dataclass
        class Wrapper:
            breakdown: PhaseBreakdown
            energy: EnergyReport

        payload = result_to_dict(
            Wrapper(PhaseBreakdown(1, 2, 3, 4), EnergyReport(1, 2, 3))
        )
        assert payload["breakdown"]["total"] == 10
        assert payload["energy"]["total_j"] == 6

    def test_converts_numpy(self):
        @__import__("dataclasses").dataclass
        class Wrapper:
            values: np.ndarray
            count: np.int64

        payload = result_to_dict(
            Wrapper(np.array([1.5, 2.5]), np.int64(7))
        )
        assert payload["values"] == [1.5, 2.5]
        assert payload["count"] == 7

    def test_large_arrays_summarized(self):
        @__import__("dataclasses").dataclass
        class Wrapper:
            big: np.ndarray

        payload = result_to_dict(Wrapper(np.zeros(100_000)))
        assert payload["big"]["shape"] == [100_000]

    def test_rejects_non_dataclass(self):
        with pytest.raises(ExperimentError):
            result_to_dict({"not": "a dataclass"})

    def test_real_experiment_exports(self, tmp_path):
        cache = DatasetCache(TINY)
        result = run_fig2(TINY, cache)
        path = export_json(result, tmp_path / "fig2.json")
        loaded = json.loads(path.read_text())
        assert loaded["rows"]
        first = loaded["rows"][0]
        assert "breakdown" in first and "normalized" in first


class TestScalingStudy:
    def test_runs_and_monotone_sizes(self):
        result = run_scaling_study(
            TINY, None, scales=(0.01, 0.03), num_dpus=256
        )
        assert len(result.points) == 2
        assert result.points[1].num_nodes > result.points[0].num_nodes
        assert all(p.cpu_s > 0 and p.upmem_total_s > 0
                   for p in result.points)

    def test_report_renders(self):
        result = run_scaling_study(
            TINY, None, scales=(0.01,), num_dpus=128
        )
        assert "scaling study" in result.format_report()
