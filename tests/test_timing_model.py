"""Differential tests for the calibrated closed-form timing model (PR 9).

The fast path must stay within the stated tolerance of the cycle-exact
simulator everywhere it serves, fall back honestly everywhere else, and
leave ``REPRO_TIMING_MODEL=exact`` bit-identical to the pre-PR pipeline
(pinned by ``tests/golden/pipeline_stats.json``).  Seeds are printed in
assert messages so failures are reproducible in isolation.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import UpmemError
from repro.upmem import (
    DpuConfig,
    InstructionProfile,
    InstrClass,
    KernelProfile,
    RevolverPipeline,
    merge_profiles,
    synthesize_stream,
    synthesize_stream_table,
    timing_mode_override,
)
from repro.upmem import fastmodel
from repro.upmem.fastmodel import (
    TimingCoefficients,
    calibrate,
    default_coefficients,
    predict,
)
from repro.upmem.pipeline import _synthesize_stream_reference
from repro.upmem.profile import clear_sim_cache

pytestmark = pytest.mark.timing

GOLDEN = Path(__file__).parent / "golden" / "pipeline_stats.json"

#: Stated tolerance of the fast path, in absolute breakdown-fraction
#: units (docs/TIMING_MODEL.md).
TOLERANCE = 0.02


@pytest.fixture(autouse=True)
def _fresh_timing_state():
    fastmodel.STATS.reset()
    clear_sim_cache()
    yield
    fastmodel.STATS.reset()
    clear_sim_cache()


def _spec_profile(spec) -> InstructionProfile:
    p = InstructionProfile(rf_pair_fraction=spec["rf"])
    for name, count in spec["counts"].items():
        if count:
            p.add(InstrClass(name), count)
    if spec["dma_n"]:
        p.add_dma(spec["dma_bytes"], spec["dma_n"])
    p.mutex_acquires = spec["mutex"]
    return p


def _stats_dict(stats):
    return {
        "cycles": stats.cycles,
        "issue_cycles": stats.issue_cycles,
        "idle_memory": stats.idle_memory,
        "idle_revolver": stats.idle_revolver,
        "idle_rf": stats.idle_rf,
        "instructions_issued": stats.instructions_issued,
        "active_thread_cycles": stats.active_thread_cycles,
        "class_issued": {
            k.value: v for k, v in stats.class_issued.items()
        },
    }


def _exact_stats(profile, tasklets, seed, cap, cfg):
    streams = [
        synthesize_stream(profile, seed=seed + t, max_instructions=cap)
        for t in range(tasklets)
    ]
    streams = [s for s in streams if s] or [[]]
    return RevolverPipeline(cfg).run(streams)


class TestModeSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(fastmodel.ENV_VAR, raising=False)
        assert fastmodel.timing_mode() == "fast"

    def test_env_var_forces_exact(self, monkeypatch):
        monkeypatch.setenv(fastmodel.ENV_VAR, "exact")
        assert fastmodel.timing_mode() == "exact"

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(fastmodel.ENV_VAR, "exact")
        with timing_mode_override("fast"):
            assert fastmodel.timing_mode() == "fast"
        assert fastmodel.timing_mode() == "exact"

    def test_invalid_mode_rejected(self):
        with pytest.raises(UpmemError):
            fastmodel.set_timing_mode("approximate")


class TestFastVsExactGrid:
    def test_grid_within_tolerance(self):
        """Every in-envelope grid cell matches the exact simulator to
        within the stated breakdown-fraction tolerance."""
        cfg = DpuConfig()
        rng = np.random.default_rng(987)
        served = 0
        for prof, tasklets, seed in fastmodel._grid_profiles(rng, 120):
            cap = max(4000 // tasklets, 1)
            stats, reason = predict(
                prof, tasklets, seed=seed, max_instructions=cap, config=cfg
            )
            if stats is None:
                continue
            served += 1
            exact = _exact_stats(prof, tasklets, seed, cap, cfg)
            ctx = f"(stream seed={seed}, tasklets={tasklets})"
            bf, be = stats.breakdown_fractions(), exact.breakdown_fractions()
            for k in bf:
                assert abs(bf[k] - be[k]) <= TOLERANCE, (
                    f"{k} fraction off by {abs(bf[k] - be[k]):.4f} {ctx}"
                )
            assert abs(
                stats.avg_active_threads - exact.avg_active_threads
            ) / tasklets <= TOLERANCE, (
                f"active-thread utilization off {ctx}"
            )
            assert abs(stats.ipc - exact.ipc) <= TOLERANCE, f"ipc off {ctx}"
            # bookkeeping terms are table-driven: exact, not approximate
            assert stats.instructions_issued == exact.instructions_issued, ctx
            assert stats.issue_cycles == exact.issue_cycles, ctx
            assert stats.idle_rf == exact.idle_rf, ctx
            assert stats.class_issued == exact.class_issued, ctx
        # the grid must actually exercise the fast path
        assert served >= 40, f"only {served} grid cells served (seed=987)"

    def test_locked_multitasklet_streams_are_refused(self):
        prof = InstructionProfile()
        prof.add(InstrClass.ARITH, 40)
        prof.add(InstrClass.SYNC, 8)
        prof.mutex_acquires = 4
        stats, reason = predict(prof, tasklets=8, seed=3)
        assert stats is None
        assert reason == "lock_contention"
        # uncontended single-tasklet locks stay on the fast path
        stats, reason = predict(prof, tasklets=1, seed=3)
        assert stats is not None, f"unexpected fallback: {reason}"

    def test_out_of_envelope_dma_is_refused(self):
        coeffs = default_coefficients()
        assert coeffs is not None, "shipped timing_coeffs.json missing"
        hi = coeffs.envelope["dma_latency_max"][1]
        prof = InstructionProfile()
        prof.add(InstrClass.ARITH, 50)
        # one transfer far past the calibrated latency range
        prof.add_dma(int(hi * 40), 1)
        stats, reason = predict(prof, tasklets=4, seed=11)
        assert stats is None
        assert reason == "envelope:dma_latency_max"


class TestDispatch:
    def _profile(self, mutex=0):
        p = InstructionProfile()
        p.add(InstrClass.ARITH, 4000)
        p.add(InstrClass.CONTROL, 1500)
        p.add(InstrClass.SYNC, 200)
        p.add_dma(6400, 100)
        p.mutex_acquires = mutex
        return KernelProfile(
            kernel_name="k", instructions=p.scaled(64 * 8),
            num_dpus=64, active_tasklets_per_dpu=8.0,
        )

    def test_fast_dispatch_counts_hit(self):
        kp = self._profile()
        with timing_mode_override("fast"):
            kp.simulate_representative_dpu(max_instructions=6000)
        assert fastmodel.STATS.fastpath_hits == 1
        assert fastmodel.STATS.exact_runs == 0

    def test_fallback_is_bit_exact_and_counted(self):
        kp = self._profile(mutex=40 * 64 * 8)
        cfg = DpuConfig()
        with timing_mode_override("fast"):
            got = kp.simulate_representative_dpu(
                config=cfg, max_instructions=6000, seed=5
            )
        assert fastmodel.STATS.fallback_reasons == {"lock_contention": 1}
        per_tasklet = kp.instructions.scaled(1.0 / (64 * 8))
        exact = _exact_stats(per_tasklet, 8, 5, 6000 // 8, cfg)
        assert _stats_dict(got) == _stats_dict(exact)

    def test_exact_mode_forces_simulator(self):
        kp = self._profile()
        with timing_mode_override("exact"):
            kp.simulate_representative_dpu(max_instructions=6000)
        assert fastmodel.STATS.fastpath_hits == 0
        assert fastmodel.STATS.fallback_reasons == {"mode_exact": 1}

    def test_memo_answers_repeats_with_isolated_copies(self):
        kp = self._profile()
        with timing_mode_override("fast"):
            first = kp.simulate_representative_dpu(max_instructions=6000)
            first.class_issued.clear()  # must not corrupt the memo
            first.cycles = -1
            second = kp.simulate_representative_dpu(max_instructions=6000)
        assert fastmodel.STATS.memo_hits == 1
        assert second.cycles > 0
        assert second.class_issued, "memoized class counts were shared"

    def test_scale_surfaces_truncation(self):
        kp = self._profile()
        with timing_mode_override("exact"):
            full = kp.simulate_representative_dpu(max_instructions=200_000)
            cut = kp.simulate_representative_dpu(max_instructions=800)
        assert full.scale == 1.0
        assert 0.0 < cut.scale < 1.0


class TestGoldenBitIdentity:
    """``REPRO_TIMING_MODEL=exact`` reproduces the pre-PR simulator
    bit-for-bit (the golden file was generated before the fast model and
    the vectorized stream synthesis landed)."""

    def test_pipeline_cases(self):
        data = json.loads(GOLDEN.read_text())
        cfg = DpuConfig()
        for case in data["pipeline"]:
            spec = case["spec"]
            prof = _spec_profile(spec)
            streams = [
                synthesize_stream(prof, seed=spec["seed"] + t)
                for t in range(spec["tasklets"])
            ]
            got = _stats_dict(RevolverPipeline(cfg).run(streams))
            assert got == case["stats"], (
                f"pipeline stats drifted (seed={spec['seed']}, "
                f"tasklets={spec['tasklets']})"
            )

    def test_representative_dpu_cases(self):
        data = json.loads(GOLDEN.read_text())
        with timing_mode_override("exact"):
            for case in data["representative_dpu"]:
                spec = case["spec"]
                prof = _spec_profile(spec)
                kp = KernelProfile(
                    kernel_name="golden",
                    instructions=prof.scaled(64 * spec["tasklets"]),
                    num_dpus=64,
                    active_tasklets_per_dpu=float(spec["tasklets"]),
                )
                got = _stats_dict(
                    kp.simulate_representative_dpu(
                        max_instructions=6000, seed=spec["seed"]
                    )
                )
                assert got == case["stats"], (
                    f"representative-DPU stats drifted "
                    f"(seed={spec['seed']}, tasklets={spec['tasklets']})"
                )


class TestCoefficients:
    def test_roundtrip(self, tmp_path):
        coeffs = calibrate(cases=40, grid_seed=4242, max_instructions=1500)
        path = tmp_path / "coeffs.json"
        coeffs.save(path)
        loaded = TimingCoefficients.load(path)
        assert loaded.to_dict() == coeffs.to_dict()

    def test_roundtripped_fit_predicts_identically(self, tmp_path):
        coeffs = calibrate(cases=40, grid_seed=4242, max_instructions=1500)
        path = tmp_path / "coeffs.json"
        coeffs.save(path)
        loaded = TimingCoefficients.load(path)
        prof = InstructionProfile()
        prof.add(InstrClass.ARITH, 60)
        prof.add_dma(640, 4)
        a, _ = predict(prof, tasklets=6, seed=9, coefficients=coeffs)
        b, _ = predict(prof, tasklets=6, seed=9, coefficients=loaded)
        assert a is not None and b is not None
        assert _stats_dict(a) == _stats_dict(b)

    def test_config_mismatch_falls_back(self):
        prof = InstructionProfile()
        prof.add(InstrClass.ARITH, 60)
        stats, reason = predict(
            prof, tasklets=4, config=DpuConfig(dispatch_gap_cycles=7)
        )
        assert stats is None
        assert reason == "config_mismatch"

    def test_shipped_residuals_within_tolerance(self):
        coeffs = default_coefficients()
        assert coeffs is not None, "shipped timing_coeffs.json missing"
        for target, quantiles in coeffs.residuals.items():
            assert quantiles["max"] <= TOLERANCE, (
                f"shipped {target} residual max {quantiles['max']:.4f} "
                f"exceeds the stated tolerance"
            )


class TestStreamSynthesis:
    def test_vectorized_matches_reference_emitter(self):
        """The ndarray stream builder is bit-identical to the legacy
        per-Instruction emitter across the profile space."""
        rng = np.random.default_rng(20260808)
        for case in range(60):
            prof = InstructionProfile(
                rf_pair_fraction=float(rng.choice([0.0, 0.05, 0.08, 0.31]))
            )
            for klass in (
                InstrClass.ARITH, InstrClass.MUL32, InstrClass.FADD,
                InstrClass.FMUL, InstrClass.LOADSTORE, InstrClass.CONTROL,
                InstrClass.SYNC,
            ):
                count = int(rng.integers(0, 90))
                if count:
                    prof.add(klass, count)
            transfers = int(rng.integers(0, 12))
            if transfers:
                prof.add_dma(int(rng.integers(0, 9000)), transfers)
            sync = prof.count(InstrClass.SYNC)
            prof.mutex_acquires = int(rng.integers(0, sync + 1))
            seed = int(rng.integers(0, 1000))
            cap = int(rng.choice([60, 400, 50_000]))
            got = synthesize_stream_table(
                prof, seed=seed, max_instructions=cap
            ).instructions()
            want = _synthesize_stream_reference(
                prof, seed=seed, max_instructions=cap
            )
            assert got == want, (
                f"stream drift (case={case}, seed={seed}, cap={cap})"
            )

    def test_empty_profile_synthesizes_empty_stream(self):
        assert synthesize_stream(InstructionProfile()) == []


class TestMergeProfiles:
    def test_generator_input_counts_correctly(self):
        """Regression: generators were exhausted by the merge loop, so the
        post-loop len(list(...)) saw 0 and the tasklet average was wrong."""
        def make(n):
            for i in range(n):
                yield KernelProfile(
                    kernel_name=f"it{i}",
                    num_dpus=64,
                    active_tasklets_per_dpu=12.0,
                )
        from_gen = merge_profiles("merged", make(4))
        from_list = merge_profiles("merged", list(make(4)))
        assert from_gen.active_tasklets_per_dpu == pytest.approx(12.0)
        assert (
            from_gen.active_tasklets_per_dpu
            == from_list.active_tasklets_per_dpu
        )
