"""Tests for the ELLPACK format and its SpMV kernel."""

import numpy as np
import pytest

from repro.datasets import degree_targeted, road_network
from repro.errors import KernelError, SparseFormatError
from repro.kernels import prepare_kernel, prepare_spmv_ell
from repro.semiring import BOOLEAN_OR_AND, MIN_PLUS, PLUS_TIMES
from repro.sparse import COOMatrix, ELLMatrix, spmv_dense
from repro.upmem import SystemConfig
from conftest import random_graph


@pytest.fixture
def system():
    return SystemConfig(num_dpus=64)


def sample(seed=0, n=50, density=0.12):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.uniform(0.5, 2.0, (n, n))
    return COOMatrix.from_dense(dense), dense


class TestELLFormat:
    def test_roundtrip(self):
        coo, dense = sample()
        ell = ELLMatrix.from_coo(coo)
        assert np.allclose(ell.to_dense(), dense)
        assert ell.nnz == coo.nnz

    def test_width_is_max_degree(self):
        coo, dense = sample(1)
        ell = ELLMatrix.from_coo(coo)
        assert ell.width == int((dense != 0).sum(axis=1).max())

    def test_padding_ratio(self):
        # one dense row, others single-entry: heavy padding
        dense = np.zeros((4, 4))
        dense[0, :] = 1.0
        dense[1, 0] = dense[2, 1] = dense[3, 2] = 1.0
        ell = ELLMatrix.from_coo(COOMatrix.from_dense(dense))
        assert ell.width == 4
        assert ell.padding_ratio == pytest.approx(16 / 7)

    def test_uniform_rows_no_padding(self):
        # ring: every row exactly one entry
        edges = [(i, (i + 1) % 6) for i in range(6)]
        ell = ELLMatrix.from_coo(COOMatrix.from_edges(edges, 6))
        assert ell.padding_ratio == pytest.approx(1.0)

    def test_conversions(self):
        coo, dense = sample(2)
        ell = ELLMatrix.from_coo(coo)
        assert np.allclose(ell.to_csr().to_dense(), dense)
        assert np.allclose(ell.to_csc().to_dense(), dense)

    def test_empty_matrix(self):
        ell = ELLMatrix.from_coo(COOMatrix.empty(5, dtype=np.float64))
        assert ell.nnz == 0
        assert ell.padding_ratio == 1.0

    def test_validation(self):
        with pytest.raises(SparseFormatError):
            ELLMatrix(np.zeros(3), np.zeros(3), (3, 3))  # 1-D
        with pytest.raises(SparseFormatError):
            ELLMatrix(
                np.full((2, 2), 5), np.zeros((2, 2)), (2, 3)
            )  # col out of range

    def test_row_slots(self):
        coo, dense = sample(3)
        ell = ELLMatrix.from_coo(coo)
        cols, vals = ell.row_slots(0)
        real = cols != -1
        expected_cols = np.nonzero(dense[0])[0]
        assert np.array_equal(np.sort(cols[real]), expected_cols)


class TestELLKernel:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS,
                                          BOOLEAN_OR_AND])
    def test_matches_reference(self, semiring, system):
        matrix = random_graph(n=150, avg_degree=5, seed=13)
        kernel = prepare_kernel("spmv-ell", matrix, 16, system)
        x = np.ones(150, dtype=np.int32)
        result = kernel.run(x, semiring)
        expected = spmv_dense(matrix, x, semiring)
        got = result.output.to_dense(zero=semiring.zero)
        finite = ~np.isinf(np.asarray(expected, dtype=np.float64))
        assert np.allclose(
            np.asarray(got, dtype=np.float64)[finite],
            np.asarray(expected, dtype=np.float64)[finite],
        )

    def test_processes_padded_slots(self, system):
        matrix = random_graph(n=200, avg_degree=4, seed=17)
        kernel = prepare_spmv_ell(matrix, 16, system)
        result = kernel.run(np.ones(200, dtype=np.int32), PLUS_TIMES)
        # padded slot count >= real nnz
        assert result.elements_processed >= matrix.nnz

    def test_rejects_wrong_length(self, system):
        matrix = random_graph(n=100, seed=19)
        kernel = prepare_spmv_ell(matrix, 8, system)
        with pytest.raises(KernelError):
            kernel.run(np.zeros(7), PLUS_TIMES)

    def test_padding_penalty_on_skewed_graphs(self, system):
        """The design-space lesson: ELL's relative cost tracks padding."""
        rng = np.random.default_rng(23)
        uniform = road_network(10_000, rng=rng)
        skewed = degree_targeted(10_000, 12.0, 41.0, rng=rng)
        x_uniform = np.ones(uniform.nrows, dtype=np.int32)
        x_skewed = np.ones(skewed.nrows, dtype=np.int32)

        def kernel_ratio(graph, x):
            ell = prepare_kernel("spmv-ell", graph, 64, system)
            coo = prepare_kernel("spmv-coo-nnz", graph, 64, system)
            t_ell = ell.run(x, PLUS_TIMES).breakdown.kernel
            t_coo = coo.run(x, PLUS_TIMES).breakdown.kernel
            return t_ell / t_coo

        assert kernel_ratio(skewed, x_skewed) > kernel_ratio(
            uniform, x_uniform
        )

    def test_padding_ratio_exposed(self, system):
        matrix = random_graph(n=100, avg_degree=5, seed=29)
        kernel = prepare_spmv_ell(matrix, 8, system)
        assert kernel.padding_ratio >= 1.0
