"""Extending the framework: a custom semiring for most-reliable paths.

The kernels are parameterized by an arbitrary semiring (paper §2.1), so
new analytics need no kernel changes.  This example defines the
(max, x) *reliability* semiring over link success probabilities and
computes the most-reliable delivery probability from a source to every
vertex of a network — then inspects the kernel's microarchitectural
profile with the cycle-level tracing tools.

Run:  python examples/custom_semiring.py
"""

import numpy as np

from repro import SystemConfig
from repro.algorithms.base import MatvecDriver, FixedPolicy
from repro.datasets import erdos_renyi
from repro.semiring import MAX_TIMES
from repro.sparse import COOMatrix, SparseVector
from repro.upmem import TracingPipeline, csc_spmspv_program, split_columns_among_tasklets

NUM_DPUS = 128


def most_reliable_paths(graph, source, system, num_dpus, iterations=30):
    """Fixed-point iteration of r = max(r, A (x)_{max,*} r)."""
    n = graph.nrows
    reliability = np.zeros(n)
    reliability[source] = 1.0
    driver = MatvecDriver(graph, system, num_dpus)
    policy = FixedPolicy("spmspv")
    total_s = 0.0
    for iteration in range(iterations):
        frontier = SparseVector.from_dense(reliability, zero=0.0)
        result = driver.step(frontier, MAX_TIMES, policy, iteration)
        total_s += result.breakdown.total
        candidate = result.output.to_dense(zero=0.0)
        improved = candidate > reliability
        if not improved.any():
            break
        reliability = np.maximum(reliability, candidate)
    return reliability, total_s, iteration + 1


def main() -> None:
    rng = np.random.default_rng(17)
    topology = erdos_renyi(4000, 5.0, rng=rng)
    # replace unit weights with link success probabilities in (0.5, 1)
    probabilities = rng.uniform(0.5, 0.999, topology.nnz)
    network = COOMatrix(
        topology.rows, topology.cols, probabilities, topology.shape
    )
    system = SystemConfig(num_dpus=NUM_DPUS)

    reliability, total_s, iters = most_reliable_paths(
        network, 0, system, NUM_DPUS
    )
    reachable = (reliability > 0).sum()
    print(f"most-reliable paths from node 0 under the (max, x) semiring:")
    print(f"  {reachable} reachable nodes in {iters} iterations "
          f"({total_s * 1e3:.2f} ms simulated)")
    best = np.argsort(reliability)[::-1][1:6]
    for node in best:
        print(f"  node {node}: delivery probability {reliability[node]:.4f}")

    # peek under the hood: trace one DPU's tasklets through the pipeline
    print("\none DPU's CSC-SpMSpV tasklets through the revolver pipeline:")
    shares = split_columns_among_tasklets([4, 2, 6, 3, 5, 1, 2, 4], 4)
    streams = [
        csc_spmspv_program(share, rng=np.random.default_rng(i))
        for i, share in enumerate(shares)
    ]
    trace = TracingPipeline().run_traced(streams)
    print(trace.timeline(width=64))
    print(f"dispatch utilization: {trace.utilization():.1%} "
          "(D = blocking DMA, the §6.4 bottleneck)")


if __name__ == "__main__":
    main()
