"""Landmark centrality: batched multi-source BFS with the SpMM kernel.

Estimates closeness centrality by running BFS from a random sample of
landmark vertices — all at once, as one boolean SpMM per level, so the
adjacency matrix streams out of the PIM banks once per level for the
whole batch.  Compares the batched run against launching the same
traversals one source at a time.

Run:  python examples/landmark_centrality.py
"""

import time

import numpy as np

from repro import SystemConfig, bfs
from repro.algorithms import closeness_centrality_estimate, multi_source_bfs
from repro.datasets import degree_targeted
from repro.sparse import compute_stats

NUM_DPUS = 256
NUM_LANDMARKS = 12


def main() -> None:
    rng = np.random.default_rng(41)
    graph = degree_targeted(15_000, 8.0, 20.0, rng=rng)
    stats = compute_stats(graph)
    print(f"graph: {stats.num_nodes} nodes, {stats.num_edges} edges")

    system = SystemConfig(num_dpus=NUM_DPUS)
    landmarks = rng.choice(graph.nrows, NUM_LANDMARKS, replace=False).tolist()

    batched = multi_source_bfs(graph, landmarks, system, NUM_DPUS)
    sequential_s = sum(
        bfs(graph, source, system, NUM_DPUS).total_s for source in landmarks
    )
    print(f"\n{NUM_LANDMARKS} BFS traversals:")
    print(f"  one at a time (SpMSpV):   {sequential_s * 1e3:8.2f} ms")
    print(f"  batched (boolean SpMM):   {batched.total_s * 1e3:8.2f} ms "
          f"({sequential_s / batched.total_s:.1f}x faster)")
    print(f"  levels until convergence: {batched.num_iterations}")

    closeness = closeness_centrality_estimate(
        graph, system, NUM_DPUS, num_samples=NUM_LANDMARKS, rng=rng
    )
    top = np.argsort(closeness)[::-1][:5]
    print("\nmost central vertices (sampled closeness):")
    for rank, vertex in enumerate(top, 1):
        print(f"  {rank}. vertex {vertex} (score {closeness[vertex]:.4f})")


if __name__ == "__main__":
    main()
