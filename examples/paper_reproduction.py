"""Regenerate every figure and table of the paper in one run.

Executes all experiment runners at the configured scale and writes the
text reports to ``reports/`` (next to this script), mirroring what the
``benchmarks/`` suite asserts.  Control the fidelity with environment
variables:

* ``REPRO_SCALE`` — fraction of each dataset's published node count
  (default 0.04; 1.0 regenerates at full size — slow),
* ``REPRO_DPUS`` — DPU count for the kernel studies (default 512).

Run:  python examples/paper_reproduction.py
"""

import pathlib
import time

from repro.experiments import (
    DatasetCache,
    ExperimentConfig,
    run_density_study,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9_11,
    run_hardware_ablations,
    run_interconnect_ablation,
    run_model_agreement,
    run_scaling_study,
    run_table2,
    run_table4,
)

EXPERIMENTS = (
    ("fig2_spmv_partitioning", run_fig2),
    ("fig4_per_iteration", run_fig4),
    ("fig5_spmspv_variants", run_fig5),
    ("fig6_spmspv_vs_spmv", run_fig6),
    ("fig7_adaptive_vs_sparsep", run_fig7),
    ("fig8_dpu_scaling", run_fig8),
    ("fig9_10_11_profiling", run_fig9_11),
    ("table2_datasets", run_table2),
    ("table4_system_comparison", run_table4),
    ("ablation_hardware", run_hardware_ablations),
    ("ablation_interconnect", run_interconnect_ablation),
    ("density_study", run_density_study),
    ("scaling_study", run_scaling_study),
)


def main() -> None:
    config = ExperimentConfig()
    cache = DatasetCache(config)
    out_dir = pathlib.Path(__file__).parent / "reports"
    out_dir.mkdir(exist_ok=True)
    print(f"scale={config.scale}, dpus={config.num_dpus}, "
          f"datasets={config.datasets}")
    print(f"reports -> {out_dir}\n")

    for name, runner in EXPERIMENTS:
        start = time.time()
        result = runner(config, cache)
        report = result.format_report()
        (out_dir / f"{name}.txt").write_text(report + "\n")
        print(f"[{time.time() - start:6.1f}s] {name}")

    start = time.time()
    agreement = run_model_agreement()
    (out_dir / "ablation_model.txt").write_text(
        agreement.format_report() + "\n"
    )
    print(f"[{time.time() - start:6.1f}s] ablation_model "
          f"(worst analytic/sim ratio {agreement.worst_ratio:.2f}x)")
    print("\ndone; see EXPERIMENTS.md for the paper-vs-measured index")


if __name__ == "__main__":
    main()
