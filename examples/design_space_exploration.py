"""Design-space exploration: every kernel x format x density (Figs. 5-6).

Sweeps all seven kernels (two SpMV partitionings, five SpMSpV variants)
across input-vector densities on one graph and prints the four-phase
breakdown grid — the paper's §6.1 trade-off study in miniature.  Use it
to pick a kernel for your own graph/density regime.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.kernels import KERNELS, prepare_kernel
from repro.semiring import PLUS_TIMES
from repro.sparse import compute_stats, random_sparse_vector
from repro.datasets import degree_targeted
from repro.upmem import SystemConfig

NUM_DPUS = 256
DENSITIES = (0.01, 0.10, 0.50)


def main() -> None:
    rng = np.random.default_rng(31)
    graph = degree_targeted(20_000, 10.0, 36.0, rng=rng)
    stats = compute_stats(graph)
    print(f"graph: {stats.num_nodes} nodes, {stats.num_edges} edges\n")

    system = SystemConfig(num_dpus=NUM_DPUS)
    kernels = {
        name: prepare_kernel(name, graph, NUM_DPUS, system)
        for name in KERNELS
    }

    header = (f"{'kernel':>15} {'density':>8} {'load':>8} {'kernel':>8} "
              f"{'retrv':>8} {'merge':>8} {'total':>8}  (ms)")
    print(header)
    print("-" * len(header))

    best = {}
    for density in DENSITIES:
        x = random_sparse_vector(
            graph.ncols, density, rng=rng, dtype=graph.dtype
        )
        for name, kernel in kernels.items():
            result = kernel.run(x, PLUS_TIMES)
            b = result.breakdown
            print(f"{name:>15} {density:>8.0%} {b.load*1e3:>8.3f} "
                  f"{b.kernel*1e3:>8.3f} {b.retrieve*1e3:>8.3f} "
                  f"{b.merge*1e3:>8.3f} {b.total*1e3:>8.3f}")
            key = (density,)
            if key not in best or b.total < best[key][1]:
                best[key] = (name, b.total)
        print()

    print("winners by density (paper §6.1: CSC-2D dominates at >=10%,")
    print("row-banded variants can win below 10%):")
    for (density,), (name, total) in sorted(best.items()):
        print(f"  {density:>4.0%}: {name} ({total*1e3:.3f} ms)")


if __name__ == "__main__":
    main()
