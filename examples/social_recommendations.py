"""Personalized recommendations: PPR on a scale-free follower graph.

Personalized PageRank scores every vertex by its importance *to one
source user* — the basis of who-to-follow recommendations (§5.1).  This
example builds a social graph, runs PPR for a user on the simulated PIM
system, prints the top recommendations, and compares the UPMEM run
against the CPU (GridGraph-style) and GPU (cuGraph-style) baselines the
paper's Table 4 uses.

Run:  python examples/social_recommendations.py
"""

import numpy as np

from repro import SystemConfig, ppr
from repro.adaptive import AdaptiveSwitchPolicy
from repro.baselines import CpuGraphEngine, GpuGraphEngine
from repro.datasets import degree_targeted
from repro.sparse import compute_stats

NUM_DPUS = 512


def main() -> None:
    rng = np.random.default_rng(23)
    # a Slashdot-class social graph (Table 2: avg 12.27, std 41.07)
    graph = degree_targeted(30_000, 12.27, 41.07, rng=rng)
    stats = compute_stats(graph)
    print(f"social graph: {stats.num_nodes} users, {stats.num_edges} "
          f"follows, degree std/avg = {stats.degree_skew:.1f} "
          f"(scale-free)")

    user = int(rng.integers(0, graph.nrows))
    system = SystemConfig(num_dpus=NUM_DPUS)
    policy = AdaptiveSwitchPolicy.for_matrix(graph)
    print(f"adaptive policy: {policy.describe()}")

    pim_run = ppr(graph, user, system, NUM_DPUS, policy=policy)

    ranks = pim_run.values
    top = np.argsort(ranks)[::-1]
    top = [v for v in top if v != user][:5]
    print(f"\ntop-5 recommendations for user {user}:")
    for rank_pos, v in enumerate(top, 1):
        print(f"  {rank_pos}. user {v} (score {ranks[v]:.5f})")

    # system comparison, Table-4 style
    cpu_run = CpuGraphEngine().ppr(graph, user)
    gpu_run = GpuGraphEngine().ppr(graph, user)
    assert np.abs(cpu_run.values - ranks).sum() < 1e-4

    print(f"\n{'system':>14} {'time (ms)':>10} {'energy (J)':>11} "
          f"{'utilization':>11}")
    print(f"{'CPU':>14} {cpu_run.milliseconds:>10.1f} "
          f"{cpu_run.energy_j:>11.3f} {cpu_run.utilization_pct:>10.4f}%")
    print(f"{'GPU':>14} {gpu_run.milliseconds:>10.1f} "
          f"{gpu_run.energy_j:>11.3f} {gpu_run.utilization_pct:>10.4f}%")
    print(f"{'UPMEM kernel':>14} {pim_run.kernel_s * 1e3:>10.1f} "
          f"{'':>11} {pim_run.utilization_kernel_pct:>10.4f}%")
    print(f"{'UPMEM total':>14} {pim_run.total_s * 1e3:>10.1f} "
          f"{pim_run.energy.total_j:>11.3f} "
          f"{pim_run.utilization_total_pct:>10.4f}%")
    print(f"\nUPMEM kernel speedup over CPU: "
          f"{cpu_run.seconds / pim_run.kernel_s:.1f}x "
          f"(paper reports 3.6x average for PPR)")


if __name__ == "__main__":
    main()
