"""Road-network routing: SSSP on a perturbed grid (the r-TX workload).

The paper motivates SSSP with road-network routing (§5.1).  This example
builds a roadNet-style graph, runs SSSP from a depot vertex under three
kernel policies — SpMV-only (SparseP), SpMSpV-only, and ALPHA-PIM's
adaptive switch — and compares their end-to-end times.  On a regular
graph the adaptive policy uses the 20% switching threshold (§4.2.1).

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro import SystemConfig, sssp
from repro.adaptive import AdaptiveSwitchPolicy
from repro.algorithms import FixedPolicy, MatvecDriver, sssp_reference
from repro.datasets import add_weights, road_network
from repro.sparse import compute_stats

NUM_DPUS = 512


def main() -> None:
    rng = np.random.default_rng(11)
    roads = road_network(40_000, rng=rng)
    # travel times in, say, seconds per segment
    roads = add_weights(roads, rng=rng, low=1, high=30)
    stats = compute_stats(roads)
    print(f"road network: {stats.num_nodes} intersections, "
          f"{stats.num_edges} road segments, "
          f"avg degree {stats.average_degree:.2f} "
          f"(std {stats.degree_std:.2f} -> regular graph)")

    system = SystemConfig(num_dpus=NUM_DPUS)
    depot = 0

    # prepare the partitioning once and share it across policies
    driver = MatvecDriver(roads, system, NUM_DPUS)

    policies = {
        "SpMV-only (SparseP)": FixedPolicy("spmv"),
        "SpMSpV-only": FixedPolicy("spmspv"),
        "ALPHA-PIM adaptive": AdaptiveSwitchPolicy.for_matrix(roads),
    }
    results = {}
    for name, policy in policies.items():
        results[name] = sssp(
            roads, depot, system, NUM_DPUS, policy=policy, driver=driver
        )

    # all answers must be identical (and match the reference)
    reference = sssp_reference(roads, depot)
    for name, run in results.items():
        assert np.allclose(run.values, reference), name

    reachable = np.isfinite(reference).sum()
    print(f"\nshortest travel times from depot {depot}: "
          f"{reachable} reachable intersections, "
          f"max {np.nanmax(np.where(np.isfinite(reference), reference, np.nan)):.0f}s")

    print(f"\n{'policy':>22} {'iters':>6} {'total (ms)':>11} "
          f"{'kernel (ms)':>12} {'vs SpMV-only':>12}")
    baseline = results["SpMV-only (SparseP)"].total_s
    for name, run in results.items():
        print(f"{name:>22} {run.num_iterations:>6} "
              f"{run.total_s * 1e3:>11.2f} {run.kernel_s * 1e3:>12.2f} "
              f"{baseline / run.total_s:>11.2f}x")


if __name__ == "__main__":
    main()
