"""Quickstart: BFS on a small social graph with adaptive kernel switching.

Builds a graph, runs ALPHA-PIM BFS on a simulated 256-DPU UPMEM system,
and prints the answer plus the four-phase execution breakdown the paper's
figures are made of.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import COOMatrix, SystemConfig, bfs
from repro.adaptive import AdaptiveSwitchPolicy
from repro.datasets import scale_free
from repro.sparse import compute_stats

def main() -> None:
    # 1. A scale-free graph (think: a small social network)
    rng = np.random.default_rng(7)
    graph = scale_free(5000, avg_degree=8.0, rng=rng)
    stats = compute_stats(graph)
    print(f"graph: {stats.num_nodes} nodes, {stats.num_edges} edges, "
          f"avg degree {stats.average_degree:.2f} "
          f"(std {stats.degree_std:.2f})")

    # 2. A simulated UPMEM system with 256 DPUs
    system = SystemConfig(num_dpus=256)

    # 3. The adaptive policy classifies the graph (regular vs scale-free)
    #    and picks the SpMSpV -> SpMV switching threshold (paper §4.2)
    policy = AdaptiveSwitchPolicy.for_matrix(graph)
    print(f"adaptive policy: {policy.describe()}")

    # 4. Run BFS from vertex 0
    result = bfs(graph, source=0, system=system, num_dpus=256, policy=policy)

    reached = int((result.values >= 0).sum())
    print(f"\nBFS from vertex 0 reached {reached} vertices in "
          f"{result.num_iterations} levels")

    print("\nper-iteration trace (the Fig. 4 view):")
    print(f"{'iter':>4} {'kernel':>14} {'density':>8} {'time (ms)':>10}")
    for trace in result.iterations:
        print(f"{trace.iteration:>4} {trace.kernel_name:>14} "
              f"{trace.input_density:>8.1%} {trace.total_s * 1e3:>10.3f}")

    b = result.breakdown
    print(f"\ntotals: load={b.load*1e3:.2f}ms kernel={b.kernel*1e3:.2f}ms "
          f"retrieve={b.retrieve*1e3:.2f}ms merge={b.merge*1e3:.2f}ms")
    print(f"energy: {result.energy.total_j:.3f} J | "
          f"compute utilization (kernel): "
          f"{result.utilization_kernel_pct:.2f}%")


if __name__ == "__main__":
    main()
